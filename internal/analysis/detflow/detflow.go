// Package detflow is the interprocedural extension of the determinism
// analyzer: where determinism flags nondeterministic constructs used
// directly inside result-producing packages, detflow computes a
// per-function taint summary bottom-up over the call graph and reports
// when nondeterminism reaches a result-producing function through a call
// chain — a time.Now two helpers deep is invisible to the intraprocedural
// check but corrupts RESULTS.txt just the same.
//
// Sources (per-function direct facts): time.Now/time.Since calls, any use
// of math/rand or math/rand/v2, and appends into outer variables in map
// iteration order without a later sort. A source site already covered by
// a //lint:ignore determinism (or detflow) directive is treated as
// reviewed and does not taint — the existing telemetry-timing
// suppressions in internal/experiments keep their force transitively.
//
// Sinks: every function in a result-producing package (the same set the
// determinism analyzer guards) plus any function named Digest. A finding
// is reported at the sink's call site into the tainted subgraph, with the
// chain down to the originating source; direct uses inside a sink are
// deliberately not re-reported — that is determinism's finding.
//
// Soundness caveats, documented rather than papered over: taint does not
// propagate through interface or function-value calls (no points-to
// analysis), and internal/telemetry is a barrier — it reads clocks by
// design, but only observational state flows out of it, never result
// values.
package detflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"leakbound/internal/analysis"
	"leakbound/internal/analysis/callgraph"
	"leakbound/internal/analysis/summary"
)

var Analyzer = &analysis.Analyzer{
	Name:       "detflow",
	Doc:        "trace nondeterminism (clocks, randomness, map order) through call chains into result-producing code",
	RunProgram: run,
}

// resultPackages mirrors the determinism analyzer's sink set.
var resultPackages = regexp.MustCompile(`(^|/)internal/(leakage|interval|experiments|report|stats)$`)

// telemetryBarrier matches the observability layer: clock reads inside it
// are its purpose, and nothing it computes feeds results.
const telemetryBarrier = "internal/telemetry"

// fact is one function's taint summary: whether nondeterminism is
// statically reachable from it, what kind, and one witness route.
type fact struct {
	tainted bool
	what    string      // "time.Now", "math/rand", "map iteration order"
	chain   []token.Pos // call sites from this function down to the source site, then the site itself
	route   []string    // node names from this function down to the source holder
}

func run(pass *analysis.ProgramPass) error {
	g := callgraph.Build(pass.Packages)
	sanctioned := analysis.Directives(pass.Packages...)

	facts := summary.Compute(g,
		func(n *callgraph.Node) fact {
			if inTelemetry(n) {
				return fact{}
			}
			return directFact(pass.Fset, sanctioned, n)
		},
		func(caller *callgraph.Node, f fact, call callgraph.Call, calleeFact fact) (fact, bool) {
			if f.tainted || !calleeFact.tainted || inTelemetry(call.Callee) {
				return f, false
			}
			return fact{
				tainted: true,
				what:    calleeFact.what,
				chain:   append([]token.Pos{call.Site}, calleeFact.chain...),
				route:   append([]string{caller.String()}, calleeFact.route...),
			}, true
		},
	)

	for _, n := range g.Nodes {
		if !isSink(n) {
			continue
		}
		for _, c := range n.Calls {
			if c.Callee == nil || !facts[c.Callee].tainted {
				continue
			}
			// A tainted callee that is itself a sink carries its own finding
			// (or determinism's, if the use is direct) — report at the
			// deepest sink boundary only.
			if isSink(c.Callee) {
				continue
			}
			cf := facts[c.Callee]
			pass.Reportf(c.Site, cf.chain, "call chain reaches %s (via %s): nondeterminism must not flow into results",
				cf.what, strings.Join(cf.route, " → "))
		}
	}
	return nil
}

// directFact scans a node's own body for nondeterminism sources, skipping
// sites already suppressed for determinism or detflow.
func directFact(fset *token.FileSet, sanctioned analysis.DirectiveIndex, n *callgraph.Node) fact {
	info := n.Pkg.TypesInfo
	reviewed := func(pos token.Pos) bool {
		p := fset.Position(pos)
		return sanctioned.Covers("determinism", p) || sanctioned.Covers("detflow", p)
	}
	var f fact
	source := func(pos token.Pos, what string) {
		if f.tainted || reviewed(pos) {
			return
		}
		f = fact{tainted: true, what: what, chain: []token.Pos{pos}, route: []string{n.String()}}
	}
	body := n.Body()
	inspectOwn(body, func(x ast.Node) {
		switch x := x.(type) {
		case *ast.CallExpr:
			fn := analysis.CalleeFunc(info, x)
			if analysis.IsPkgFunc(fn, "time", "Now") {
				source(x.Pos(), "time.Now")
			} else if analysis.IsPkgFunc(fn, "time", "Since") {
				source(x.Pos(), "time.Since")
			}
		case *ast.SelectorExpr:
			if id, ok := x.X.(*ast.Ident); ok {
				if pn, ok := info.Uses[id].(*types.PkgName); ok {
					switch pn.Imported().Path() {
					case "math/rand", "math/rand/v2":
						source(x.Pos(), "math/rand")
					}
				}
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(x.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					if pos, ok := unsortedMapAppend(info, body, x); ok {
						source(pos, "map iteration order")
					}
				}
			}
		}
	})
	return f
}

// unsortedMapAppend reports an append into a variable declared outside
// the map range, unless a sort call mentioning that variable follows in
// the same body — the same collect-then-sort contract the determinism
// analyzer enforces.
func unsortedMapAppend(info *types.Info, body *ast.BlockStmt, rs *ast.RangeStmt) (token.Pos, bool) {
	var hit token.Pos
	ast.Inspect(rs.Body, func(x ast.Node) bool {
		if hit.IsValid() {
			return false
		}
		as, ok := x.(*ast.AssignStmt)
		if !ok || (as.Tok != token.ASSIGN && as.Tok != token.DEFINE) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || i >= len(as.Lhs) {
				continue
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
					if obj := assignedObject(info, as.Lhs[i]); obj != nil && obj.Pos() < rs.Pos() {
						if !sortedAfter(info, body, rs, obj) {
							hit = as.Pos()
						}
					}
				}
			}
		}
		return true
	})
	return hit, hit.IsValid()
}

// sortedAfter reports whether a sort.*/slices.Sort* call mentioning obj
// appears after the range within the same body.
func sortedAfter(info *types.Info, body *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(x ast.Node) bool {
		if found {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		fn := analysis.CalleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "sort": // every exported entry point sorts
		case "slices":
			if !strings.HasPrefix(fn.Name(), "Sort") {
				return true
			}
		default:
			return true
		}
		ast.Inspect(call, func(y ast.Node) bool {
			if id, ok := y.(*ast.Ident); ok && info.Uses[id] == obj {
				found = true
			}
			return !found
		})
		return true
	})
	return found
}

func assignedObject(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := info.Defs[e]; obj != nil {
			return obj
		}
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}

func inTelemetry(n *callgraph.Node) bool {
	return n != nil && analysis.PathHasSuffix(n.Pkg.PkgPath, telemetryBarrier)
}

// isSink reports whether the node's findings would feed the paper's
// numbers: any function in a result-producing package, or a Digest
// implementation anywhere.
func isSink(n *callgraph.Node) bool {
	if resultPackages.MatchString(n.Pkg.PkgPath) {
		return true
	}
	return n.Fn != nil && n.Fn.Name() == "Digest"
}

// inspectOwn walks root without descending into nested function literals.
func inspectOwn(root *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(root, func(x ast.Node) bool {
		if x == nil {
			return false
		}
		visit(x)
		_, isLit := x.(*ast.FuncLit)
		return !isLit
	})
}
