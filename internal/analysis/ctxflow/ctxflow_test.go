package ctxflow_test

import (
	"testing"

	"leakbound/internal/analysis/analysistest"
	"leakbound/internal/analysis/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, "testdata", ctxflow.Analyzer,
		"example.com/internal/flow",
		"example.com/internal/tool",
	)
}
