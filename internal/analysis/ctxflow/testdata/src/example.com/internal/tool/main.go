// Command tool is a main package: minting a background context at the
// top of the process is exactly what main packages are for, so nothing
// here is flagged even though the import path is internal.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = run(ctx)
}

func run(ctx context.Context) error { return ctx.Err() }
