// Package flow is a ctxflow fixture: an internal library package with a
// PR-2-style split API (X / XContext pairs).
package flow

import "context"

// DoContext is the context-aware spine.
func DoContext(ctx context.Context, n int) error { return ctx.Err() }

// Do is the sanctioned compatibility wrapper: a single return delegating
// to its own ...Context sibling. Not flagged.
func Do(n int) error { return DoContext(context.Background(), n) }

// Mint is not a wrapper for its own sibling, so its background context is
// a library-code violation.
func Mint(n int) error {
	return DoContext(context.Background(), n) // want `context.Background in library package`
}

// Todo flags the TODO spelling the same way.
func Todo() error {
	ctx := context.TODO() // want `context.TODO in library package`
	return DoContext(ctx, 1)
}

// Runner has a split method pair.
type Runner struct{}

// Run is the non-context variant.
func (r *Runner) Run() {}

// RunContext is the context-aware variant.
func (r *Runner) RunContext(ctx context.Context) {}

// Solo has no ...Context sibling anywhere.
func Solo(n int) int { return n }

// Handle holds a ctx, so dropping it on the way down is flagged.
func Handle(ctx context.Context, r *Runner) error {
	r.Run()                       // want `calls Run while holding a ctx; RunContext accepts it`
	if err := Do(3); err != nil { // want `calls Do while holding a ctx; DoContext accepts it`
		return err
	}
	Solo(1)           // no sibling: fine
	r.RunContext(ctx) // context-aware: fine
	return DoContext(ctx, 1)
}

// Suppressed shows a justified escape hatch.
func Suppressed(ctx context.Context, r *Runner) {
	//lint:ignore ctxflow fixture: fire-and-forget cleanup must not inherit cancellation
	r.Run()
}
