// Package ctxflow enforces the context discipline the PR-2 API split
// established: once a caller holds a ctx it must stay on the ...Context
// spine (dropping it silently severs cancellation for a whole subtree),
// and library code never mints its own background context — only main
// packages, tests, and the sanctioned single-return compatibility
// wrappers (`func X(...) { return XContext(context.Background(), ...) }`)
// may do that.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"leakbound/internal/analysis"
)

// Analyzer flags dropped contexts and background contexts minted inside
// library packages.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "flag calls that drop a held context when a ...Context sibling exists, and context.Background/TODO in internal library code",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		filename := pass.Fset.Position(file.Pos()).Filename
		isTest := strings.HasSuffix(filename, "_test.go")
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !isTest {
				checkBackground(pass, fd)
			}
			checkDroppedContext(pass, fd)
		}
	}
	return nil, nil
}

// checkDroppedContext flags calls inside exported context-accepting
// functions that invoke the non-context variant of an API that has a
// ...Context sibling.
func checkDroppedContext(pass *analysis.Pass, fd *ast.FuncDecl) {
	obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok || !fd.Name.IsExported() || !analysis.HasContextParam(obj.Type().(*types.Signature)) {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := analysis.CalleeFunc(pass.TypesInfo, call)
		if callee == nil || strings.HasSuffix(callee.Name(), "Context") {
			return true
		}
		sig := callee.Type().(*types.Signature)
		if analysis.HasContextParam(sig) {
			return true // already context-aware under a different name
		}
		if sib := contextSibling(callee); sib != nil {
			pass.Reportf(call.Pos(), "calls %s while holding a ctx; %s accepts it", callee.Name(), sib.Name())
		}
		return true
	})
}

// contextSibling returns the ...Context variant of fn — a function of the
// same package (or method of the same receiver type) named fn+"Context"
// whose first parameter is a context.Context — or nil.
func contextSibling(fn *types.Func) *types.Func {
	sibName := fn.Name() + "Context"
	sig := fn.Type().(*types.Signature)
	var obj types.Object
	if recv := sig.Recv(); recv != nil {
		obj, _, _ = types.LookupFieldOrMethod(recv.Type(), true, fn.Pkg(), sibName)
	} else if fn.Pkg() != nil {
		obj = fn.Pkg().Scope().Lookup(sibName)
	}
	sib, ok := obj.(*types.Func)
	if !ok || !analysis.HasContextParam(sib.Type().(*types.Signature)) {
		return nil
	}
	return sib
}

// checkBackground flags context.Background/TODO in internal library
// packages, exempting the sanctioned compatibility-wrapper shape.
func checkBackground(pass *analysis.Pass, fd *ast.FuncDecl) {
	if !strings.Contains(pass.Pkg.Path(), "internal/") || pass.Pkg.Name() == "main" {
		return
	}
	if isCompatWrapper(pass.TypesInfo, fd) {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeFunc(pass.TypesInfo, call)
		if analysis.IsPkgFunc(fn, "context", "Background") || analysis.IsPkgFunc(fn, "context", "TODO") {
			pass.Reportf(call.Pos(), "context.%s in library package: accept a ctx from the caller", fn.Name())
		}
		return true
	})
}

// isCompatWrapper recognizes the one blessed Background shape: a function
// whose entire body is `return XContext(context.Background(), ...)` where
// X is the function's own name.
func isCompatWrapper(info *types.Info, fd *ast.FuncDecl) bool {
	if len(fd.Body.List) != 1 {
		return false
	}
	ret, ok := fd.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return false
	}
	call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr)
	if !ok {
		return false
	}
	callee := analysis.CalleeFunc(info, call)
	return callee != nil && callee.Name() == fd.Name.Name+"Context"
}
