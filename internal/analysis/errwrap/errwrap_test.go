package errwrap

import (
	"testing"

	"leakbound/internal/analysis/analysistest"
)

func TestErrwrap(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "example.com/errwrap")
}

func TestScanVerbs(t *testing.T) {
	cases := []struct {
		format string
		verbs  string
		ok     bool
	}{
		{"plain", "", true},
		{"%v and %w", "vw", true},
		{"100%% done: %s", "s", true},
		{"%+v %#v % d %05.2f", "vvdf", true},
		{"%*d %w", "*dw", true},
		{"%.*f", "*f", true},
		{"%[1]s", "", false},
		{"trailing %", "", true},
	}
	for _, c := range cases {
		verbs, ok := scanVerbs(c.format)
		if ok != c.ok {
			t.Errorf("scanVerbs(%q) ok = %v, want %v", c.format, ok, c.ok)
			continue
		}
		if got := string(verbs); ok && got != c.verbs {
			t.Errorf("scanVerbs(%q) = %q, want %q", c.format, got, c.verbs)
		}
	}
}
