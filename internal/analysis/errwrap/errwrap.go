// Package errwrap enforces the repo's sentinel-error contract: errors
// are chained with %w (never flattened to text with %v/%s) and matched
// with errors.Is (never ==), so the exported sentinels
// (interval.ErrOutOfOrder, experiments.ErrUnknownPolicy, ...) remain
// matchable through every wrapping layer of the pipeline and the serving
// stack's error-to-status mapping keeps working.
package errwrap

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"leakbound/internal/analysis"
)

// Analyzer flags %v/%s interpolation of errors and == comparison against
// sentinel errors.
var Analyzer = &analysis.Analyzer{
	Name: "errwrap",
	Doc:  "flag fmt.Errorf error arguments formatted with %v/%s instead of %w, and ==/!= comparison against sentinel errors instead of errors.Is",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkErrorf(pass, n)
			case *ast.BinaryExpr:
				checkSentinelCompare(pass, n)
			}
			return true
		})
	}
	return nil, nil
}

// checkErrorf aligns the verbs of a constant fmt.Errorf format string
// with its arguments and flags error-typed arguments consumed by a
// stringifying verb.
func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if !analysis.IsPkgFunc(fn, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	verbs, ok := scanVerbs(constant.StringVal(tv.Value))
	if !ok {
		return // explicit argument indexes; out of scope
	}
	args := call.Args[1:]
	for i, v := range verbs {
		if i >= len(args) {
			break // malformed call; go vet's printf check owns that
		}
		if v != 'v' && v != 's' && v != 'q' {
			continue
		}
		if t := pass.TypesInfo.TypeOf(args[i]); analysis.IsErrorType(t) {
			pass.Reportf(args[i].Pos(), "error formatted with %%%c: use %%w so errors.Is/As can unwrap it", v)
		}
	}
}

// scanVerbs returns the argument-consuming verbs of a printf format
// string in order, with '*' width/precision markers as pseudo-verbs. The
// second result is false when the format uses explicit argument indexes,
// which this analyzer does not model.
func scanVerbs(format string) ([]rune, bool) {
	var verbs []rune
	rs := []rune(format)
	for i := 0; i < len(rs); i++ {
		if rs[i] != '%' {
			continue
		}
		i++
		if i < len(rs) && rs[i] == '%' {
			continue
		}
		// flags, width, precision — '*' consumes an argument of its own.
		for i < len(rs) {
			c := rs[i]
			if c == '[' {
				return nil, false
			}
			if c == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if c == '+' || c == '-' || c == '#' || c == ' ' || c == '0' || c == '.' || (c >= '1' && c <= '9') {
				i++
				continue
			}
			break
		}
		if i < len(rs) {
			verbs = append(verbs, rs[i])
		}
	}
	return verbs, true
}

// checkSentinelCompare flags ==/!= where either operand names a
// package-level error variable (a sentinel like ErrUnknownPolicy or
// io.EOF); errors.Is is the only comparison that survives wrapping.
func checkSentinelCompare(pass *analysis.Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	for _, operand := range []ast.Expr{be.X, be.Y} {
		obj := referredVar(pass.TypesInfo, operand)
		if obj == nil || obj.Pkg() == nil || obj.Parent() != obj.Pkg().Scope() {
			continue
		}
		if analysis.IsErrorType(obj.Type()) {
			pass.Reportf(be.Pos(), "%s compared with %s: use errors.Is so wrapped errors match", obj.Name(), be.Op)
			return
		}
	}
}

// referredVar resolves an identifier or package-qualified selector to the
// variable it names, or nil.
func referredVar(info *types.Info, e ast.Expr) *types.Var {
	var obj types.Object
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj = info.Uses[e]
	case *ast.SelectorExpr:
		obj = info.Uses[e.Sel]
	}
	v, _ := obj.(*types.Var)
	return v
}
