// Package errwrap is the errwrap fixture: error interpolation and
// sentinel comparison, both ways.
package errwrap

import (
	"errors"
	"fmt"
	"io"
)

// ErrBase is a package-level sentinel.
var ErrBase = errors.New("base")

// FlattenV loses the chain with %v.
func FlattenV(err error) error {
	return fmt.Errorf("op failed: %v", err) // want `error formatted with %v: use %w`
}

// FlattenS loses the chain with %s.
func FlattenS(err error) error {
	return fmt.Errorf("op failed: %s", err) // want `error formatted with %s: use %w`
}

// FlattenQ loses the chain with %q.
func FlattenQ(err error) error {
	return fmt.Errorf("op failed: %q", err) // want `error formatted with %q: use %w`
}

// SecondArg checks verb/argument alignment: the string is fine, the
// error is not.
func SecondArg(name string, err error) error {
	return fmt.Errorf("op %q: %v", name, err) // want `error formatted with %v: use %w`
}

// Wrap is the correct chain-preserving form.
func Wrap(err error) error {
	return fmt.Errorf("op failed: %w", err)
}

// WrapBoth chains a sentinel and a cause; two %w verbs are fine.
func WrapBoth(err error) error {
	return fmt.Errorf("%w: %w", ErrBase, err)
}

// NonError may use %v freely.
func NonError(name string) error {
	return fmt.Errorf("no such benchmark %v", name)
}

// Star keeps alignment across width arguments.
func Star(width int, err error) error {
	return fmt.Errorf("%*d trailing: %w", width, 7, err)
}

// EqSentinel compares identity, which breaks as soon as anyone wraps.
func EqSentinel(err error) bool {
	return err == ErrBase // want `ErrBase compared with ==: use errors.Is`
}

// NeqStdlib flags stdlib sentinels the same way.
func NeqStdlib(err error) bool {
	return err != io.EOF // want `EOF compared with !=: use errors.Is`
}

// NilCheck is fine: nil is not a sentinel variable.
func NilCheck(err error) bool {
	return err == nil
}

// Is is the correct matching form.
func Is(err error) bool {
	return errors.Is(err, ErrBase)
}

// LocalCompare is fine: both operands are locals, not sentinels.
func LocalCompare(a, b error) bool {
	return a == b
}
