// Package callgraph builds a static call graph over the packages loaded
// by the analysis framework. Nodes are function declarations and function
// literals; edges are call sites classified as static (target known at
// compile time), interface (dynamic dispatch through an interface
// method), or function-value (dynamic call through a variable, field, or
// parameter of function type). Targets are resolved across package
// boundaries by canonical key — the per-package type-checks produce
// distinct *types.Func objects for the same function, so object identity
// cannot be used across packages.
//
// The graph is deliberately conservative and cheap: it does not attempt
// points-to analysis, so interface and function-value calls have no
// callee edge. Interprocedural analyzers treat those sites as opaque —
// hotalloc reports them on hot paths (devirtualization is part of the
// hot-path contract), detflow documents them as a soundness caveat.
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"leakbound/internal/analysis"
)

// Kind classifies a call site.
type Kind int

const (
	// Static calls have a compile-time-known target: package functions,
	// methods on concrete receivers, method expressions, and immediately
	// invoked function literals.
	Static Kind = iota
	// Interface calls dispatch through an interface method set.
	Interface
	// FuncValue calls go through a variable, field, or parameter of
	// function type.
	FuncValue
)

func (k Kind) String() string {
	switch k {
	case Static:
		return "static"
	case Interface:
		return "interface"
	default:
		return "function-value"
	}
}

// Call is one call site inside a node's body (excluding nested function
// literals, which own their sites).
type Call struct {
	Site token.Pos
	Kind Kind
	// Callee is the target node for Static calls whose target is declared
	// in a loaded package; nil for dynamic calls and for static calls into
	// dependencies outside the program (stdlib, export data).
	Callee *Node
	// Fn is the called object for Static and Interface calls (the
	// interface method for the latter); nil for FuncValue calls.
	Fn *types.Func
	// InLoop reports whether the site sits inside a for/range statement of
	// the enclosing body — the distinction hotalloc's entry-tier markers
	// are built on.
	InLoop bool
}

// Ref is a use of a function as a value rather than a call: a function
// literal that is stored or passed, a method value, or a declared
// function referenced outside call position. Analyzers that propagate
// hotness or taint treat a ref as "the target may run wherever the value
// flows".
type Ref struct {
	Pos    token.Pos
	Target *Node
	InLoop bool
}

// Node is one function body: a declaration or a literal.
type Node struct {
	// Key is the canonical cross-package identity, "pkgpath.Name" or
	// "pkgpath.Recv.Name" for declarations and a position-derived synthetic
	// key for literals.
	Key string
	// Fn is the declared object; nil for literals.
	Fn   *types.Func
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	// Parent is the enclosing function node for literals; nil for
	// declarations.
	Parent *Node
	Pkg    *analysis.Package
	Calls  []Call
	Refs   []Ref
}

// Body returns the node's statement block.
func (n *Node) Body() *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	return n.Lit.Body
}

// Pos returns the declaration or literal position.
func (n *Node) Pos() token.Pos {
	if n.Decl != nil {
		return n.Decl.Pos()
	}
	return n.Lit.Pos()
}

// Sig returns the node's signature.
func (n *Node) Sig() *types.Signature {
	if n.Fn != nil {
		return n.Fn.Type().(*types.Signature)
	}
	if tv, ok := n.Pkg.TypesInfo.Types[n.Lit]; ok {
		if sig, ok := tv.Type.(*types.Signature); ok {
			return sig
		}
	}
	return nil
}

// String renders the node for diagnostics: "pkg.Fn", "(*T).M", or
// "function literal in pkg.Fn".
func (n *Node) String() string {
	if n.Fn != nil {
		sig := n.Fn.Type().(*types.Signature)
		if recv := sig.Recv(); recv != nil {
			return fmt.Sprintf("(%s).%s", types.TypeString(recv.Type(), types.RelativeTo(n.Fn.Pkg())), n.Fn.Name())
		}
		return n.Fn.Pkg().Name() + "." + n.Fn.Name()
	}
	if n.Parent != nil {
		return "function literal in " + n.Parent.String()
	}
	return "function literal"
}

// Graph is the program-wide call graph. Nodes appear in deterministic
// build order (packages sorted by import path, files and declarations in
// source order, literals as encountered).
type Graph struct {
	Nodes []*Node
	byKey map[string]*Node
	byLit map[*ast.FuncLit]*Node
}

// Lookup resolves a *types.Func (from any package's type-check) to its
// node, or nil if the function is not declared in a loaded package.
func (g *Graph) Lookup(fn *types.Func) *Node {
	if fn == nil {
		return nil
	}
	return g.byKey[FuncKey(fn)]
}

// FuncKey is the canonical cross-package identity of a declared function:
// "pkgpath.Name", or "pkgpath.Recv.Name" for methods (pointerness of the
// receiver is erased — a method has one body). Generic instantiations map
// to their origin declaration.
func FuncKey(fn *types.Func) string {
	fn = fn.Origin()
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := types.Unalias(sig.Recv().Type())
		if p, ok := t.(*types.Pointer); ok {
			t = types.Unalias(p.Elem())
		}
		name := "?"
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name()
		} else if iface, ok := t.(*types.Interface); ok {
			name = iface.String()
		}
		return pkg + "." + name + "." + fn.Name()
	}
	return pkg + "." + fn.Name()
}

// Build constructs the graph over every function declared in pkgs.
func Build(pkgs []*analysis.Package) *Graph {
	g := &Graph{
		byKey: make(map[string]*Node),
		byLit: make(map[*ast.FuncLit]*Node),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Syntax {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &Node{Key: FuncKey(fn), Fn: fn, Decl: fd, Pkg: pkg}
				g.Nodes = append(g.Nodes, n)
				g.byKey[n.Key] = n
			}
		}
	}
	// Walk declaration bodies; literals register themselves as they are
	// found, so iterate over a snapshot.
	decls := make([]*Node, len(g.Nodes))
	copy(decls, g.Nodes)
	for _, n := range decls {
		g.walkBody(n)
	}
	return g
}

// walkBody populates n.Calls and n.Refs from its own statements, creating
// and recursively walking child nodes for nested function literals.
func (g *Graph) walkBody(n *Node) {
	body := n.Body()
	info := n.Pkg.TypesInfo

	// Pass A: create nodes for directly nested literals (their own nested
	// literals are handled by the recursive walk).
	ast.Inspect(body, func(x ast.Node) bool {
		lit, ok := x.(*ast.FuncLit)
		if !ok {
			return true
		}
		pos := n.Pkg.Fset.Position(lit.Pos())
		child := &Node{
			Key:    fmt.Sprintf("%s.$lit@%s:%d:%d", n.Pkg.PkgPath, pos.Filename, pos.Line, pos.Column),
			Lit:    lit,
			Parent: n,
			Pkg:    n.Pkg,
		}
		g.Nodes = append(g.Nodes, child)
		g.byKey[child.Key] = child
		g.byLit[lit] = child
		g.walkBody(child)
		return false
	})

	// Pass B: the set of expressions in call-operator position (so uses of
	// functions as values can be told apart from calls) and of selector Sel
	// identifiers (handled via their SelectorExpr, not as bare idents).
	funPos := make(map[ast.Node]bool)
	selSel := make(map[*ast.Ident]bool)
	inspectOwn(body, func(x ast.Node) {
		switch x := x.(type) {
		case *ast.CallExpr:
			funPos[ast.Unparen(x.Fun)] = true
		case *ast.SelectorExpr:
			selSel[x.Sel] = true
		}
	})

	loops := loopSpans(body)

	// Pass C: classify calls and refs.
	inspectOwn(body, func(x ast.Node) {
		switch x := x.(type) {
		case *ast.CallExpr:
			if c, ok := g.classifyCall(info, x); ok {
				c.InLoop = loops.contains(x.Lparen)
				n.Calls = append(n.Calls, c)
			}
		case *ast.FuncLit:
			if !funPos[x] {
				n.Refs = append(n.Refs, Ref{Pos: x.Pos(), Target: g.byLit[x], InLoop: loops.contains(x.Pos())})
			}
		case *ast.Ident:
			if funPos[x] || selSel[x] {
				return
			}
			if fn, ok := info.Uses[x].(*types.Func); ok {
				if t := g.Lookup(fn); t != nil {
					n.Refs = append(n.Refs, Ref{Pos: x.Pos(), Target: t, InLoop: loops.contains(x.Pos())})
				}
			}
		case *ast.SelectorExpr:
			if funPos[x] {
				return
			}
			var fn *types.Func
			if sel, ok := info.Selections[x]; ok {
				if sel.Kind() == types.MethodVal || sel.Kind() == types.MethodExpr {
					fn, _ = sel.Obj().(*types.Func)
				}
			} else if f, ok := info.Uses[x.Sel].(*types.Func); ok {
				fn = f // package-qualified function used as a value
			}
			if t := g.Lookup(fn); t != nil {
				n.Refs = append(n.Refs, Ref{Pos: x.Pos(), Target: t, InLoop: loops.contains(x.Pos())})
			}
		}
	})
}

// classifyCall resolves one call expression; ok is false for conversions
// and builtins, which are not calls.
func (g *Graph) classifyCall(info *types.Info, call *ast.CallExpr) (Call, bool) {
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return Call{}, false // conversion
	}
	fun := ast.Unparen(call.Fun)
	// Generic instantiation: f[T](...) — unwrap to the underlying ident or
	// selector.
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		if _, ok := info.Uses[identOf(ix.X)].(*types.Func); ok {
			fun = ast.Unparen(ix.X)
		}
	case *ast.IndexListExpr:
		if _, ok := info.Uses[identOf(ix.X)].(*types.Func); ok {
			fun = ast.Unparen(ix.X)
		}
	}
	switch fun := fun.(type) {
	case *ast.FuncLit:
		return Call{Site: call.Lparen, Kind: Static, Callee: g.byLit[fun]}, true
	case *ast.Ident:
		switch obj := info.Uses[fun].(type) {
		case *types.Builtin:
			return Call{}, false
		case *types.Func:
			return Call{Site: call.Lparen, Kind: Static, Callee: g.Lookup(obj), Fn: obj}, true
		default:
			return Call{Site: call.Lparen, Kind: FuncValue}, true
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			switch sel.Kind() {
			case types.MethodVal, types.MethodExpr:
				fn, _ := sel.Obj().(*types.Func)
				if fn != nil && isInterfaceMethod(fn) {
					return Call{Site: call.Lparen, Kind: Interface, Fn: fn}, true
				}
				return Call{Site: call.Lparen, Kind: Static, Callee: g.Lookup(fn), Fn: fn}, true
			default: // FieldVal: struct field of function type
				return Call{Site: call.Lparen, Kind: FuncValue}, true
			}
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return Call{Site: call.Lparen, Kind: Static, Callee: g.Lookup(fn), Fn: fn}, true
		}
		return Call{Site: call.Lparen, Kind: FuncValue}, true
	default:
		// Call of an arbitrary expression (index into a slice of funcs,
		// result of another call, ...).
		return Call{Site: call.Lparen, Kind: FuncValue}, true
	}
}

// isInterfaceMethod reports whether fn's receiver is an interface.
func isInterfaceMethod(fn *types.Func) bool {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	_, ok := sig.Recv().Type().Underlying().(*types.Interface)
	return ok
}

// identOf returns the terminal identifier of an expression (the ident
// itself, or a selector's Sel), or nil.
func identOf(e ast.Expr) *ast.Ident {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e
	case *ast.SelectorExpr:
		return e.Sel
	}
	return nil
}

// inspectOwn walks root without descending into nested function literals
// (the literal node itself is still visited).
func inspectOwn(root *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(root, func(x ast.Node) bool {
		if x == nil {
			return false
		}
		visit(x)
		_, isLit := x.(*ast.FuncLit)
		return !isLit
	})
}

// spanSet records source ranges of for/range statements for InLoop
// classification. The whole statement is treated as in-loop — the loop
// condition and post statement re-execute every iteration, and an
// allocation in a loop init is close enough to hot to deserve the flag.
type spanSet []span

type span struct{ lo, hi token.Pos }

func (s spanSet) contains(p token.Pos) bool {
	for _, sp := range s {
		if sp.lo <= p && p < sp.hi {
			return true
		}
	}
	return false
}

// loopSpans collects the for/range spans of body, excluding nested
// function literals.
func loopSpans(body *ast.BlockStmt) spanSet {
	var spans spanSet
	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			spans = append(spans, span{x.Pos(), x.End()})
		case *ast.RangeStmt:
			spans = append(spans, span{x.Pos(), x.End()})
		}
		return true
	})
	return spans
}
