package callgraph_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"leakbound/internal/analysis"
	"leakbound/internal/analysis/callgraph"
)

// mapImporter resolves imports from previously type-checked in-memory
// packages, so multi-package fixtures exercise the cross-package key
// resolution that object identity cannot provide.
type mapImporter map[string]*types.Package

func (m mapImporter) Import(path string) (*types.Package, error) {
	return m[path], nil
}

func load(t *testing.T, fset *token.FileSet, imp mapImporter, path, src string) *analysis.Package {
	t.Helper()
	f, err := parser.ParseFile(fset, path+".go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	info := analysis.NewTypesInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck %s: %v", path, err)
	}
	imp[path] = pkg
	return &analysis.Package{PkgPath: path, Name: f.Name.Name, Fset: fset, Syntax: []*ast.File{f}, Types: pkg, TypesInfo: info}
}

func TestBuildClassifiesCalls(t *testing.T) {
	fset := token.NewFileSet()
	imp := mapImporter{}
	dep := load(t, fset, imp, "dep", `package dep

type Curve interface{ At(int) float64 }

type Flat struct{}

func (Flat) At(int) float64 { return 0 }

func Helper() int { return 1 }
`)
	main := load(t, fset, imp, "main", `package main

import "dep"

func viaInterface(c dep.Curve) float64 { return c.At(0) }

func viaValue(f func() int) int { return f() }

func Entry() {
	_ = dep.Helper()          // static cross-package
	_ = dep.Flat{}.At(0)      // static method on concrete receiver
	_ = viaInterface(dep.Flat{})
	_ = viaValue(dep.Helper)  // ref: function used as a value
	for i := 0; i < 3; i++ {
		_ = dep.Helper() // static, in loop
	}
}
`)
	g := callgraph.Build([]*analysis.Package{dep, main})

	entry := nodeByKey(t, g, "main.Entry")
	kinds := map[callgraph.Kind]int{}
	var loopStatic, crossLinked int
	for _, c := range entry.Calls {
		kinds[c.Kind]++
		if c.Kind == callgraph.Static && c.InLoop {
			loopStatic++
		}
		if c.Callee != nil && c.Callee.Pkg.PkgPath == "dep" {
			crossLinked++
		}
	}
	// dep.Helper ×2, Flat.At, viaInterface, viaValue — all static from Entry.
	if kinds[callgraph.Static] != 5 {
		t.Errorf("Entry static calls = %d, want 5 (%+v)", kinds[callgraph.Static], entry.Calls)
	}
	if loopStatic != 1 {
		t.Errorf("Entry in-loop static calls = %d, want 1", loopStatic)
	}
	if crossLinked != 3 {
		t.Errorf("Entry cross-package resolved callees = %d, want dep.Helper ×2 + Flat.At", crossLinked)
	}
	if len(entry.Refs) != 1 || entry.Refs[0].Target == nil || entry.Refs[0].Target.Key != "dep.Helper" {
		t.Errorf("Entry refs = %+v, want one ref to dep.Helper", entry.Refs)
	}

	vi := nodeByKey(t, g, "main.viaInterface")
	if len(vi.Calls) != 1 || vi.Calls[0].Kind != callgraph.Interface {
		t.Errorf("viaInterface calls = %+v, want one interface call", vi.Calls)
	}
	if vi.Calls[0].Fn == nil || vi.Calls[0].Fn.Name() != "At" {
		t.Errorf("viaInterface interface method = %v, want At", vi.Calls[0].Fn)
	}

	vv := nodeByKey(t, g, "main.viaValue")
	if len(vv.Calls) != 1 || vv.Calls[0].Kind != callgraph.FuncValue {
		t.Errorf("viaValue calls = %+v, want one function-value call", vv.Calls)
	}
}

func TestBuildFuncLitNodes(t *testing.T) {
	fset := token.NewFileSet()
	imp := mapImporter{}
	pkg := load(t, fset, imp, "p", `package p

func leaf() {}

func Outer() func() {
	f := func() { leaf() }
	return f
}
`)
	g := callgraph.Build([]*analysis.Package{pkg})
	outer := nodeByKey(t, g, "p.Outer")
	if len(outer.Refs) != 1 || outer.Refs[0].Target == nil || outer.Refs[0].Target.Lit == nil {
		t.Fatalf("Outer refs = %+v, want one ref to the literal node", outer.Refs)
	}
	lit := outer.Refs[0].Target
	if lit.Parent != outer {
		t.Errorf("literal parent = %v, want Outer", lit.Parent)
	}
	if len(lit.Calls) != 1 || lit.Calls[0].Callee == nil || lit.Calls[0].Callee.Key != "p.leaf" {
		t.Errorf("literal calls = %+v, want static call to p.leaf", lit.Calls)
	}
	// The literal's call must not leak into Outer's own call list.
	for _, c := range outer.Calls {
		if c.Callee != nil && c.Callee.Key == "p.leaf" {
			t.Errorf("Outer owns the literal's call to leaf: %+v", outer.Calls)
		}
	}
}

func TestFuncKeyErasesReceiverPointer(t *testing.T) {
	fset := token.NewFileSet()
	imp := mapImporter{}
	pkg := load(t, fset, imp, "p", `package p

type T struct{}

func (t *T) M() {}

func Use(t *T) { t.M() }
`)
	g := callgraph.Build([]*analysis.Package{pkg})
	use := nodeByKey(t, g, "p.Use")
	if len(use.Calls) != 1 || use.Calls[0].Callee == nil || use.Calls[0].Callee.Key != "p.T.M" {
		t.Errorf("Use calls = %+v, want static call to p.T.M", use.Calls)
	}
}

func nodeByKey(t *testing.T, g *callgraph.Graph, key string) *callgraph.Node {
	t.Helper()
	for _, n := range g.Nodes {
		if n.Key == key {
			return n
		}
	}
	t.Fatalf("node %q not in graph (have %d nodes)", key, len(g.Nodes))
	return nil
}
