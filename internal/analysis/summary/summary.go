// Package summary is a bottom-up, per-function fact engine over a
// callgraph.Graph. Facts are computed once per function (memoized in the
// returned map) in callee-before-caller order; recursion is handled by
// condensing the static call graph into strongly connected components
// (Tarjan) and iterating each component to a fixpoint, so mutually
// recursive functions converge instead of looping.
//
// Facts flow only along static call edges — interface and function-value
// calls have no callee and contribute nothing, which is the engine's
// documented soundness caveat (analyzers that care, like hotalloc, flag
// those sites directly instead).
package summary

import "leakbound/internal/analysis/callgraph"

// Compute derives a fact of type F for every node in g.
//
// direct produces a node's fact from its own body alone. merge folds one
// static call edge into the caller's fact: given the caller, its current
// fact, the call site, and the callee's (possibly still converging) fact,
// it returns the updated fact and whether it changed — the changed flag
// is what drives the fixpoint inside a recursive component, so merge must
// report false once the fact stops absorbing new information or the
// engine will not terminate.
func Compute[F any](g *callgraph.Graph, direct func(*callgraph.Node) F, merge func(caller *callgraph.Node, fact F, call callgraph.Call, calleeFact F) (F, bool)) map[*callgraph.Node]F {
	facts := make(map[*callgraph.Node]F, len(g.Nodes))
	for _, scc := range SCCs(g) {
		for _, n := range scc {
			facts[n] = direct(n)
		}
		// Iterate the component to a fixpoint. Cross-component callees are
		// already final (Tarjan emits callees first); single non-recursive
		// nodes converge in one extra pass.
		for changed := true; changed; {
			changed = false
			for _, n := range scc {
				f := facts[n]
				for _, c := range n.Calls {
					if c.Callee == nil {
						continue
					}
					cf, ok := facts[c.Callee]
					if !ok {
						continue // defensive: unreachable with a well-formed graph
					}
					var ch bool
					f, ch = merge(n, f, c, cf)
					changed = changed || ch
				}
				facts[n] = f
			}
		}
	}
	return facts
}

// SCCs returns the strongly connected components of g's static call
// edges in reverse topological order of the condensation: every
// component appears after all components it calls into, so a bottom-up
// pass can process the slice front to back.
func SCCs(g *callgraph.Graph) [][]*callgraph.Node {
	type state struct {
		index, lowlink int
		onStack        bool
	}
	states := make(map[*callgraph.Node]*state, len(g.Nodes))
	var stack []*callgraph.Node
	var sccs [][]*callgraph.Node
	next := 0

	var strongconnect func(n *callgraph.Node)
	strongconnect = func(n *callgraph.Node) {
		s := &state{index: next, lowlink: next}
		next++
		states[n] = s
		stack = append(stack, n)
		s.onStack = true
		for _, c := range n.Calls {
			w := c.Callee
			if w == nil {
				continue
			}
			ws, seen := states[w]
			switch {
			case !seen:
				strongconnect(w)
				if wl := states[w].lowlink; wl < s.lowlink {
					s.lowlink = wl
				}
			case ws.onStack:
				if ws.index < s.lowlink {
					s.lowlink = ws.index
				}
			}
		}
		if s.lowlink == s.index {
			var scc []*callgraph.Node
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				states[w].onStack = false
				scc = append(scc, w)
				if w == n {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, n := range g.Nodes {
		if _, seen := states[n]; !seen {
			strongconnect(n)
		}
	}
	return sccs
}
