package summary_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"leakbound/internal/analysis"
	"leakbound/internal/analysis/callgraph"
	"leakbound/internal/analysis/summary"
)

func buildGraph(t *testing.T, src string) *callgraph.Graph {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := analysis.NewTypesInfo()
	pkg, err := (&types.Config{}).Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return callgraph.Build([]*analysis.Package{
		{PkgPath: "p", Name: "p", Fset: fset, Syntax: []*ast.File{f}, Types: pkg, TypesInfo: info},
	})
}

const recursiveSrc = `package p

func source() int { return 42 } // pretend nondeterminism originates here

func even(n int) bool {
	if n == 0 {
		return true
	}
	return odd(n - 1)
}

func odd(n int) bool {
	if n == 0 {
		return false
	}
	_ = source()
	return even(n - 1)
}

func clean(n int) int { return n + 1 }

func Caller() bool { return even(3) }

func Clean() int { return clean(clean(2)) }
`

// taint is the simplest useful fact: does the function transitively reach
// source()?
func taintFacts(g *callgraph.Graph) map[*callgraph.Node]bool {
	return summary.Compute(g,
		func(n *callgraph.Node) bool {
			for _, c := range n.Calls {
				if c.Fn != nil && c.Fn.Name() == "source" {
					return true
				}
			}
			return false
		},
		func(_ *callgraph.Node, fact bool, _ callgraph.Call, calleeFact bool) (bool, bool) {
			return fact || calleeFact, calleeFact && !fact
		},
	)
}

func TestComputeConvergesThroughMutualRecursion(t *testing.T) {
	g := buildGraph(t, recursiveSrc)
	facts := taintFacts(g)
	want := map[string]bool{
		"p.source": false, // source itself only *is* the origin; direct() keys off calls to it
		"p.even":   true,  // via the even↔odd cycle
		"p.odd":    true,
		"p.clean":  false,
		"p.Caller": true, // two calls deep through the cycle
		"p.Clean":  false,
	}
	for _, n := range g.Nodes {
		if got, ok := facts[n]; !ok {
			t.Errorf("no fact computed for %s", n.Key)
		} else if want, known := want[n.Key]; known && got != want {
			t.Errorf("fact[%s] = %v, want %v", n.Key, got, want)
		}
	}
}

func TestSCCsBottomUpOrder(t *testing.T) {
	g := buildGraph(t, recursiveSrc)
	sccs := summary.SCCs(g)
	seen := map[*callgraph.Node]bool{}
	for _, scc := range sccs {
		if len(scc) > 1 {
			var names []string
			for _, n := range scc {
				names = append(names, n.Key)
			}
			joined := strings.Join(names, ",")
			if !strings.Contains(joined, "p.even") || !strings.Contains(joined, "p.odd") {
				t.Errorf("multi-node SCC = %s, want the even/odd cycle", joined)
			}
		}
		// Bottom-up: every static callee outside this SCC must already have
		// been emitted.
		inSCC := map[*callgraph.Node]bool{}
		for _, n := range scc {
			inSCC[n] = true
		}
		for _, n := range scc {
			for _, c := range n.Calls {
				if c.Callee != nil && !inSCC[c.Callee] && !seen[c.Callee] {
					t.Errorf("SCC containing %s emitted before its callee %s", n.Key, c.Callee.Key)
				}
			}
		}
		for _, n := range scc {
			seen[n] = true
		}
	}
}
