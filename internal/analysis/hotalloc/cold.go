package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"leakbound/internal/analysis"
	"leakbound/internal/analysis/callgraph"
)

// spanSet is a list of half-open source ranges.
type spanSet []span

type span struct{ lo, hi token.Pos }

func (s spanSet) contains(p token.Pos) bool {
	for _, sp := range s {
		if sp.lo <= p && p < sp.hi {
			return true
		}
	}
	return false
}

// nodeLoops returns the for/range spans of the node's own body (nested
// literals excluded) — the regions an entry-tier marker treats as
// steady-state.
func nodeLoops(n *callgraph.Node) spanSet {
	var spans spanSet
	inspectOwn(n.Body(), func(x ast.Node) {
		switch x := x.(type) {
		case *ast.ForStmt:
			spans = append(spans, span{x.Pos(), x.End()})
		case *ast.RangeStmt:
			spans = append(spans, span{x.Pos(), x.End()})
		}
	})
	return spans
}

// coldSpans computes the error-exit regions of a node's body — code that
// runs at most once per failure, never in steady state, and is therefore
// exempt from the hot-path contract. The rules are deliberately narrow:
//
//   - a return statement whose error-position result is built by
//     fmt.Errorf, errors.New, or errors.Join (constructing the error is
//     the proof this is a failure exit);
//   - the body of an if statement whose condition involves a nil
//     comparison and that terminates by returning a non-nil error-typed
//     expression (the classic validation guard);
//   - statements that panic.
//
// A fallback like `if !ok { return Evaluate(...) }` is intentionally NOT
// cold: silently taking a slow path on every call is exactly the regression
// class this analyzer exists to surface, so such code must carry an
// explicit //lint:ignore stating why the fallback is acceptable.
func coldSpans(n *callgraph.Node) spanSet {
	info := n.Pkg.TypesInfo
	var spans spanSet
	inspectOwn(n.Body(), func(x ast.Node) {
		switch x := x.(type) {
		case *ast.ReturnStmt:
			if returnsConstructedError(info, x) {
				spans = append(spans, span{x.Pos(), x.End()})
			}
		case *ast.IfStmt:
			if hasNilComparison(x.Cond) && exitsWithError(info, x.Body) {
				spans = append(spans, span{x.Body.Pos(), x.Body.End()})
			}
		case *ast.ExprStmt:
			if call, ok := x.X.(*ast.CallExpr); ok && isPanic(info, call) {
				spans = append(spans, span{x.Pos(), x.End()})
			}
		}
	})
	return spans
}

// returnsConstructedError reports whether any result expression is a
// direct call to an error constructor.
func returnsConstructedError(info *types.Info, ret *ast.ReturnStmt) bool {
	for _, res := range ret.Results {
		call, ok := ast.Unparen(res).(*ast.CallExpr)
		if !ok {
			continue
		}
		fn := analysis.CalleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			continue
		}
		switch fn.Pkg().Path() + "." + fn.Name() {
		case "fmt.Errorf", "errors.New", "errors.Join":
			return true
		}
	}
	return false
}

// hasNilComparison reports whether the expression contains an == or !=
// against nil.
func hasNilComparison(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(x ast.Node) bool {
		if b, ok := x.(*ast.BinaryExpr); ok && (b.Op == token.EQL || b.Op == token.NEQ) {
			if isNilIdent(b.X) || isNilIdent(b.Y) {
				found = true
			}
		}
		return !found
	})
	return found
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// exitsWithError reports whether the block's final statement is a return
// carrying a non-nil error-typed expression, or a panic.
func exitsWithError(info *types.Info, body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	switch last := body.List[len(body.List)-1].(type) {
	case *ast.ReturnStmt:
		for _, res := range last.Results {
			if isNilIdent(res) {
				continue
			}
			if tv, ok := info.Types[res]; ok && tv.Type != nil && analysis.IsErrorType(tv.Type) {
				return true
			}
		}
		return false
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		return ok && isPanic(info, call)
	}
	return false
}

func isPanic(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

// inspectOwn walks root without descending into nested function literals.
func inspectOwn(root *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(root, func(x ast.Node) bool {
		if x == nil {
			return false
		}
		visit(x)
		_, isLit := x.(*ast.FuncLit)
		return !isLit
	})
}
