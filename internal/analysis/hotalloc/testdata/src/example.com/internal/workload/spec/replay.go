// Package spec mimics the real replay reader's shape but omits the
// required //lint:hotpath marker — the roster check must fail, proving
// the zero-alloc replay contract cannot silently lapse by deleting the
// marker.
package spec

// Instr is a stand-in for the replay instruction record.
type Instr struct {
	Addr uint64
}

// Replay mirrors the trace replay reader.
type Replay struct {
	instrs []Instr
}

// Emit drives the replay loop.
func (r *Replay) Emit(yield func(Instr) bool) { // want `\(\*Replay\)\.Emit is on the hot-path roster`
	for _, in := range r.instrs {
		if !yield(in) { // want `dynamic function-value call on hot path \(\*Replay\)\.Emit`
			return
		}
	}
}
