// Package pipe exercises the hotalloc contract tiers: full markers with
// transitive (two-call-deep) findings, entry markers with loop/setup/cold
// region handling, reference-propagated hotness, chain suppression, and
// malformed markers.
package pipe

import (
	"errors"
	"fmt"
)

type sink interface{ put(int) }

// Kernel is a leaf-style hot kernel: everything it statically reaches is
// steady-state.
//
//lint:hotpath
func Kernel(xs []int) int {
	total := 0
	for _, x := range xs {
		total += accum(total, x)
	}
	return total
}

func accum(a, b int) int {
	return combine(a, b)
}

func combine(a, b int) int {
	buf := make([]int, 2) // want `make allocates on hot path pipe.Kernel → pipe.accum → pipe.combine`
	buf[0] = a
	buf[1] = b
	return buf[0] + buf[1]
}

// Run is an entry point: the loop is hot, the straight-line setup and the
// error exits are not.
//
//lint:hotpath entry
func Run(xs []int, s sink) error {
	if s == nil {
		return fmt.Errorf("pipe: nil sink for %d values", len(xs)) // cold: error exit, not flagged
	}
	setup := make([]int, 0, 8) // setup outside the loop: not flagged at entry tier
	for _, x := range xs {
		setup = append(setup, x) // want `append may grow its backing array on hot path pipe.Run`
		s.put(x)                 // want `dynamic interface call put on hot path pipe.Run`
	}
	emit(helper)
	_ = setup
	return nil
}

// emit is reached from Run's setup region, so it inherits entry-ness; its
// own body has no loops, so the function-value call stays unflagged.
func emit(f func(int)) {
	f(0)
}

// helper is referenced as a value from Run — it may be invoked from the
// hot loop no matter where the reference sits, so it becomes fully hot.
func helper(n int) {
	p := new(int) // want `new allocates on hot path pipe.Run → pipe.helper`
	*p = n
}

// Wrapped demonstrates chain suppression: the directive on the call edge
// sanctions the allocation inside grow, so no finding survives.
//
//lint:hotpath
func Wrapped() {
	//lint:ignore hotalloc grow's allocation is amortized across the page
	grow()
}

func grow() {
	_ = make([]byte, 1)
}

// Odd carries a marker that is neither bare nor "entry".
//
//lint:hotpath sometimes // want `malformed //lint:hotpath directive`
func Odd() {
	_ = errors.New("never hot")
}
