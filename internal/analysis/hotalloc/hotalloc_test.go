package hotalloc_test

import (
	"testing"

	"leakbound/internal/analysis/analysistest"
	"leakbound/internal/analysis/hotalloc"
)

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, "testdata", hotalloc.Analyzer,
		"example.com/hot/pipe",
		"example.com/internal/workload/spec",
	)
}
