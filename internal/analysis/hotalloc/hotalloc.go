// Package hotalloc enforces the //lint:hotpath contract: a marked
// function — and everything statically reachable from it — must stay
// allocation-free and devirtualized in steady state. It is the static
// counterpart of the repo's zero-alloc benchmark gates (the streaming
// suite pass, BenchmarkReplayPass): the benchmark proves one workload's
// execution allocated nothing, the analyzer proves no code path can.
//
// Markers come in two tiers:
//
//	//lint:hotpath        — the whole body is steady-state ("full"): every
//	                        potential allocation and every dynamic call is
//	                        a finding. For leaf kernels (u64map.Pages.Lookup,
//	                        prefetch.ClassifyObserve).
//	//lint:hotpath entry  — the function is a hot loop's entry point: loop
//	                        bodies are steady-state, straight-line setup is
//	                        not. Static calls made inside loops push their
//	                        callees to full; calls from setup propagate
//	                        entry-ness; function literals and method values
//	                        referenced anywhere become full (callbacks
//	                        registered during setup run hot).
//
// Error exits are exempt in both tiers — returns built from
// fmt.Errorf/errors.New/errors.Join, nil-guard bodies that exit with an
// error, and panics are once-per-failure, not steady-state. Anything the
// exemption does not cover needs an explicit //lint:ignore with the
// amortization argument; the runner honors the directive on any call site
// of the reported chain, so one annotated edge sanctions everything
// reached through it.
//
// A fixed roster of functions (the hot paths the committed benchmarks
// measure) is required to carry a marker: deleting the marker is itself a
// finding, so the contract cannot silently lapse.
//
// Soundness caveats: static calls into packages outside the program
// (stdlib) are assumed allocation-free at the callee level — argument
// boxing at such calls is still caught; dynamic calls are flagged rather
// than traversed, which is exactly the devirtualization contract.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"leakbound/internal/analysis"
	"leakbound/internal/analysis/callgraph"
)

var Analyzer = &analysis.Analyzer{
	Name:       "hotalloc",
	Doc:        "enforce //lint:hotpath contracts: marked functions stay transitively allocation-free and devirtualized",
	RunProgram: run,
}

// tier is a function's hotness level; propagation only ever increases it.
type tier int

const (
	cool tier = iota
	entryTier
	fullTier
)

func (t tier) String() string {
	if t == entryTier {
		return "//lint:hotpath entry"
	}
	return "//lint:hotpath"
}

const markerPrefix = "//lint:hotpath"

// rosterEntry names a function that must carry a marker. Packages are
// matched by import-path suffix so analysistest fixtures exercise the
// check.
type rosterEntry struct {
	pkg  string // import path suffix
	recv string // receiver type name, "" for package functions
	name string
	tier tier
}

// roster is the set of hot paths backed by committed benchmark gates:
// the streaming simulator pass (BENCH r2), the aggregate evaluation
// kernels (BENCH r3), and the zero-alloc replay pass (BENCH r4).
var roster = []rosterEntry{
	{pkg: "internal/sim/cpu", name: "RunStream", tier: entryTier},
	{pkg: "internal/sim/cpu", name: "RunRingContext", tier: entryTier},
	{pkg: "internal/interval", recv: "Collector", name: "AddCols", tier: entryTier},
	{pkg: "internal/prefetch", recv: "Classifier", name: "ClassifyObserve", tier: fullTier},
	{pkg: "internal/leakage", name: "EvaluateAggregate", tier: entryTier},
	{pkg: "internal/leakage", name: "EvaluateMany", tier: entryTier},
	{pkg: "internal/u64map", recv: "Pages", name: "Lookup", tier: fullTier},
	{pkg: "internal/u64map", recv: "Pages", name: "Get", tier: fullTier},
	{pkg: "internal/workload/spec", recv: "Replay", name: "Emit", tier: fullTier},
}

func run(pass *analysis.ProgramPass) error {
	g := callgraph.Build(pass.Packages)

	// Collect markers (reporting malformed ones) and check the roster.
	marked := make(map[*callgraph.Node]tier)
	for _, n := range g.Nodes {
		if n.Decl == nil {
			continue
		}
		t, bad := parseMarker(n.Decl.Doc)
		if bad != token.NoPos {
			pass.Reportf(bad, nil, "malformed %s directive: want %q or %q", markerPrefix, "//lint:hotpath", "//lint:hotpath entry")
		}
		if t != cool {
			marked[n] = t
		}
	}
	for _, e := range roster {
		for _, n := range g.Nodes {
			if !e.matches(n) {
				continue
			}
			if marked[n] != e.tier {
				pass.Reportf(n.Decl.Pos(), nil,
					"%s is on the hot-path roster (benchmark-gated) and must carry %s", n, e.tier)
				marked[n] = e.tier // analyze it as if marked: the contract still holds
			}
		}
	}

	// Propagate hotness through static calls and function references.
	level := make(map[*callgraph.Node]tier)
	provs := make(map[*callgraph.Node]provenance)
	colds := make(map[*callgraph.Node]spanSet)
	coldOf := func(n *callgraph.Node) spanSet {
		s, ok := colds[n]
		if !ok {
			s = coldSpans(n)
			colds[n] = s
		}
		return s
	}
	var work []*callgraph.Node
	raise := func(n *callgraph.Node, t tier, from *callgraph.Node, site token.Pos) {
		if t <= level[n] {
			return
		}
		level[n] = t
		if from != nil {
			provs[n] = provenance{parent: from, site: site}
		}
		work = append(work, n)
	}
	for n, t := range marked {
		raise(n, t, nil, token.NoPos)
	}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		l := level[n]
		cold := coldOf(n)
		for _, c := range n.Calls {
			if c.Kind != callgraph.Static || c.Callee == nil || cold.contains(c.Site) {
				continue
			}
			t := fullTier
			if l == entryTier && !c.InLoop {
				t = entryTier
			}
			raise(c.Callee, t, n, c.Site)
		}
		// A referenced function value may be invoked from the hot loop no
		// matter where the reference sits — callbacks wired during setup
		// (flush closures, emit methods) run per batch.
		for _, r := range n.Refs {
			if r.Target == nil || cold.contains(r.Pos) {
				continue
			}
			raise(r.Target, fullTier, n, r.Pos)
		}
	}

	// Flag allocations and dynamic calls in hot regions.
	for _, n := range g.Nodes {
		l := level[n]
		if l == cool {
			continue
		}
		cold := coldOf(n)
		loops := nodeLoops(n)
		hot := func(p token.Pos) bool {
			if cold.contains(p) {
				return false
			}
			return l == fullTier || loops.contains(p)
		}
		chain, via := trail(provs, n)
		for _, a := range analysis.Allocations(n.Pkg.TypesInfo, n.Body(), n.Sig()) {
			if hot(a.Pos) {
				pass.Reportf(a.Pos, chain, "%s on hot path %s", a.What, via)
			}
		}
		for _, c := range n.Calls {
			if c.Kind == callgraph.Static || !hot(c.Site) {
				continue
			}
			what := "dynamic function-value call"
			if c.Kind == callgraph.Interface {
				what = "dynamic interface call " + c.Fn.Name()
			}
			pass.Reportf(c.Site, chain, "%s on hot path %s (devirtualize or justify with //lint:ignore)", what, via)
		}
	}
	return nil
}

func (e rosterEntry) matches(n *callgraph.Node) bool {
	fn := n.Fn
	if fn == nil || fn.Name() != e.name || fn.Pkg() == nil || !analysis.PathHasSuffix(fn.Pkg().Path(), e.pkg) {
		return false
	}
	return recvName(n) == e.recv
}

// recvName returns the receiver's type name with pointerness erased, ""
// for package functions.
func recvName(n *callgraph.Node) string {
	sig, _ := n.Fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return ""
	}
	t := types.Unalias(sig.Recv().Type())
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// parseMarker scans a declaration's doc comment for a hotpath marker; a
// non-zero bad position reports a directive that parsed as neither tier.
func parseMarker(doc *ast.CommentGroup) (tier, token.Pos) {
	if doc == nil {
		return cool, token.NoPos
	}
	for _, c := range doc.List {
		if !strings.HasPrefix(c.Text, markerPrefix) {
			continue
		}
		switch strings.TrimSpace(strings.TrimPrefix(c.Text, markerPrefix)) {
		case "":
			return fullTier, token.NoPos
		case "entry":
			return entryTier, token.NoPos
		default:
			return cool, c.Pos()
		}
	}
	return cool, token.NoPos
}

// provenance records which caller first made a node hot, and through
// which call site — enough to rebuild one marked-root→finding chain.
type provenance struct {
	parent *callgraph.Node
	site   token.Pos
}

// trail reconstructs the propagation path from the marked root down to n:
// the chain positions (for directive filtering on any edge) and the
// human-readable route for the message.
func trail(provs map[*callgraph.Node]provenance, n *callgraph.Node) ([]token.Pos, string) {
	var nodes []*callgraph.Node
	var chain []token.Pos
	for cur := n; ; {
		nodes = append(nodes, cur)
		p, ok := provs[cur]
		if !ok {
			break
		}
		chain = append(chain, p.site)
		cur = p.parent
	}
	// nodes and chain are innermost-first; present them root-first.
	var names []string
	for i := len(nodes) - 1; i >= 0; i-- {
		names = append(names, nodes[i].String())
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain, strings.Join(names, " → ")
}
