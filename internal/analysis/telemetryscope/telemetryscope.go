// Package telemetryscope enforces the telemetry registry's contract:
// metric and scope names are compile-time constants obeying the
// lowercase segment convention (so snapshot keys are a closed, stable,
// deterministic set — no unbounded cardinality from interpolated names),
// and metric lookups are hoisted out of loops onto constructor/init
// paths, the way every existing scope (grid, cpu, server) does it.
package telemetryscope

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"

	"leakbound/internal/analysis"
)

// Analyzer flags non-constant or ill-formed metric names and metric
// lookups inside loops.
var Analyzer = &analysis.Analyzer{
	Name: "telemetryscope",
	Doc:  "flag telemetry metric registrations with non-constant or non-conventional names, and metric lookups inside loops",
	Run:  run,
}

// nameRx is the scope.name convention: lowercase [a-z0-9_] segments
// joined by '/' or '.'.
var nameRx = regexp.MustCompile(`^[a-z0-9_]+([/.][a-z0-9_]+)*$`)

// accessorNames are the registering accessors of telemetry.Scope and
// telemetry.Registry.
var accessorNames = map[string]bool{"Counter": true, "Gauge": true, "Histogram": true, "Scope": true}

func run(pass *analysis.Pass) (interface{}, error) {
	if analysis.PathHasSuffix(pass.Pkg.Path(), "internal/telemetry") {
		return nil, nil // the registry implementation itself is exempt
	}
	for _, file := range pass.Files {
		loops := loopSpans(file)
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := analysis.CalleeFunc(pass.TypesInfo, call)
			if !isAccessor(fn) {
				return true
			}
			checkName(pass, fn, call.Args[0])
			if fn.Name() != "Scope" && loops.contains(call.Pos()) {
				pass.Reportf(call.Pos(), "%s lookup inside a loop: hoist to a constructor/init path and cache the pointer", fn.Name())
			}
			return true
		})
	}
	return nil, nil
}

// isAccessor reports whether fn is a metric accessor method of the
// telemetry package's Scope or Registry.
func isAccessor(fn *types.Func) bool {
	if fn == nil || !accessorNames[fn.Name()] || fn.Pkg() == nil {
		return false
	}
	if !analysis.PathHasSuffix(fn.Pkg().Path(), "internal/telemetry") {
		return false
	}
	return fn.Type().(*types.Signature).Recv() != nil
}

// checkName verifies the metric/scope name argument is a constant string
// obeying the naming convention.
func checkName(pass *analysis.Pass, fn *types.Func, arg ast.Expr) {
	tv, ok := pass.TypesInfo.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		pass.Reportf(arg.Pos(), "%s name must be a compile-time constant: interpolated names create unbounded metric cardinality and nondeterministic snapshots", fn.Name())
		return
	}
	if name := constant.StringVal(tv.Value); !nameRx.MatchString(name) {
		pass.Reportf(arg.Pos(), "%s name %q violates the naming convention (lowercase [a-z0-9_] segments joined by '/' or '.')", fn.Name(), name)
	}
}

// spanList is a set of position intervals.
type spanList []span

type span struct{ body *ast.BlockStmt }

func (s spanList) contains(pos token.Pos) bool {
	for _, sp := range s {
		if pos >= sp.body.Pos() && pos <= sp.body.End() {
			return true
		}
	}
	return false
}

// loopSpans collects the body spans of every for and range statement.
func loopSpans(file *ast.File) spanList {
	var spans spanList
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			spans = append(spans, span{n.Body})
		case *ast.RangeStmt:
			spans = append(spans, span{n.Body})
		}
		return true
	})
	return spans
}
