package telemetryscope_test

import (
	"testing"

	"leakbound/internal/analysis/analysistest"
	"leakbound/internal/analysis/telemetryscope"
)

func TestTelemetryscope(t *testing.T) {
	analysistest.Run(t, "testdata", telemetryscope.Analyzer,
		"example.com/internal/app",
	)
}
