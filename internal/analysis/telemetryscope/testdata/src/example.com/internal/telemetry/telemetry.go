// Package telemetry is a minimal stand-in for the real registry: the
// analyzer recognizes accessors by receiver type name and the
// internal/telemetry import-path suffix, so this stub exercises the same
// matching as the real package.
package telemetry

// Registry holds named scopes.
type Registry struct{}

// Scope returns the named scope.
func (r *Registry) Scope(name string) *Scope { return &Scope{} }

// Default returns the process-wide registry.
func Default() *Registry { return &Registry{} }

// Scope is a named group of metrics.
type Scope struct{}

// Counter returns the named counter.
func (s *Scope) Counter(name string) *Counter { return &Counter{} }

// Gauge returns the named gauge.
func (s *Scope) Gauge(name string) *Gauge { return &Gauge{} }

// Histogram returns the named histogram.
func (s *Scope) Histogram(name string) *Histogram { return &Histogram{} }

// Counter counts.
type Counter struct{}

// Add increments.
func (c *Counter) Add(n uint64) {}

// Gauge holds a value.
type Gauge struct{}

// Set stores.
func (g *Gauge) Set(v int64) {}

// Histogram buckets observations.
type Histogram struct{}

// Record observes.
func (h *Histogram) Record(v uint64) {}
