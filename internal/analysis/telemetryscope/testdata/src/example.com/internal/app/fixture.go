// Package app is the telemetryscope fixture: a consumer of the telemetry
// registry doing it right and wrong.
package app

import "example.com/internal/telemetry"

// metricPrefix shows that constant expressions (not just literals) pass
// the constant-name check.
const metricPrefix = "app"

// Worker caches metric pointers the way constructors should.
type Worker struct {
	done *telemetry.Counter
	size *telemetry.Histogram
}

// New hoists every lookup onto the construction path.
func New(r *telemetry.Registry) *Worker {
	sc := r.Scope("app")
	return &Worker{
		done: sc.Counter("jobs_done"),
		size: sc.Histogram(metricPrefix + ".batch_size"),
	}
}

// Run uses the cached pointers in the hot loop: nothing to flag.
func (w *Worker) Run(batches []int) {
	for _, b := range batches {
		w.size.Record(uint64(b))
		w.done.Add(1)
	}
}

// BadNames violates the naming convention two ways.
func BadNames(r *telemetry.Registry) {
	sc := r.Scope("App Metrics") // want `Scope name "App Metrics" violates the naming convention`
	sc.Counter("Jobs-Done")      // want `Counter name "Jobs-Done" violates the naming convention`
	sc.Gauge("queue.depth")      // dotted lowercase segments are fine
	sc.Histogram("wait/ns")      // slashed segments too
}

// Interpolated builds a metric name at runtime: unbounded cardinality.
func Interpolated(r *telemetry.Registry, job string) {
	sc := r.Scope("app")
	sc.Counter("done/" + job).Add(1) // want `Counter name must be a compile-time constant`
}

// InLoop looks the metric up once per iteration instead of hoisting it.
func InLoop(r *telemetry.Registry, batches []int) {
	sc := r.Scope("app")
	for range batches {
		sc.Counter("jobs_done").Add(1) // want `Counter lookup inside a loop`
	}
}

// SuppressedInterpolation shows the escape hatch with a recorded reason.
func SuppressedInterpolation(r *telemetry.Registry, shard int) {
	sc := r.Scope("app")
	names := []string{"a", "b"}
	//lint:ignore telemetryscope fixture: shard names are a closed two-element set
	sc.Counter("shard/" + names[shard%2]).Add(1)
}
