package locks_test

import (
	"testing"

	"leakbound/internal/analysis/analysistest"
	"leakbound/internal/analysis/locks"
)

func TestLocks(t *testing.T) {
	analysistest.Run(t, "testdata", locks.Analyzer, "example.com/locks")
}
