// Package locks is the locks fixture: copy hazards and release
// discipline, both ways.
package locks

import "sync"

// Box guards a counter.
type Box struct {
	mu sync.Mutex
	n  int
}

// RWBox guards with a reader/writer lock.
type RWBox struct {
	rw sync.RWMutex
	v  int
}

// DeferRelease is the canonical shape.
func (b *Box) DeferRelease() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n++
}

// StraightLine releases unconditionally with nothing in between that can
// escape.
func (b *Box) StraightLine() {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}

// BranchLocal is the singleflight idiom: every early return releases on
// its own path before an unconditional release at the end.
func (b *Box) BranchLocal(fast bool) int {
	b.mu.Lock()
	if fast {
		n := b.n
		b.mu.Unlock()
		return n
	}
	b.n++
	b.mu.Unlock()
	return b.n
}

// EarlyReturn escapes while still holding the lock.
func (b *Box) EarlyReturn(fast bool) int {
	b.mu.Lock() // want `b\.mu\.Lock\(\) is not reliably released in this block`
	if fast {
		return b.n
	}
	b.mu.Unlock()
	return 0
}

// NeverReleased falls off the end of the function with the lock held.
func (b *Box) NeverReleased() {
	b.mu.Lock() // want `b\.mu\.Lock\(\) is not reliably released in this block`
	b.n++
}

// ReaderDiscipline applies the same rules to RLock/RUnlock.
func (b *RWBox) ReaderDiscipline() int {
	b.rw.RLock()
	defer b.rw.RUnlock()
	return b.v
}

// ReaderLeak leaks the read lock.
func (b *RWBox) ReaderLeak() int {
	b.rw.RLock() // want `b\.rw\.RLock\(\) is not reliably released in this block`
	return b.v
}

// ClosureRelease recognizes the deferred-closure form.
func (b *Box) ClosureRelease() {
	b.mu.Lock()
	defer func() {
		b.n++
		b.mu.Unlock()
	}()
	b.n++
}

// PassByValue copies the lock through the parameter list.
func PassByValue(b Box) int { // want `PassByValue passes a lock by value`
	return b.n
}

// ValueReceiver copies the lock through the receiver.
func (b Box) ValueReceiver() int { // want `ValueReceiver passes a lock by value`
	return b.n
}

// AssignCopy copies an existing lock-bearing value.
func AssignCopy(src *Box) int {
	local := *src // want `assignment copies a lock value`
	return local.n
}

// PointerUse takes the address instead: fine.
func PointerUse(src *Box) int {
	local := src
	return local.n
}

// FreshValue constructs a new value rather than copying one: fine.
func FreshValue() *Box {
	b := Box{}
	return &b
}

// SuppressedHandoff shows the escape hatch for deliberate ownership
// transfer.
func SuppressedHandoff(b *Box) {
	//lint:ignore locks fixture: lock intentionally held across the handoff; release happens in Finish
	b.mu.Lock()
	b.n++
}
