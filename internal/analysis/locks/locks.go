// Package locks enforces the mutex hygiene the parallel pipeline depends
// on: sync.Mutex/RWMutex values are never copied (a copied lock guards
// nothing), and every acquisition is released on every path — either by
// an immediate defer or by one unconditional unlock with no way for
// control to leave the critical section in between. A leaked lock in the
// sharded collector or the suite singleflight deadlocks a sweep instead
// of failing it.
package locks

import (
	"go/ast"
	"go/token"
	"go/types"

	"leakbound/internal/analysis"
)

// Analyzer flags lock copies and unbalanced lock/unlock discipline.
var Analyzer = &analysis.Analyzer{
	Name: "locks",
	Doc:  "flag sync.Mutex/RWMutex value copies, and Lock calls not released by defer or by one unconditional Unlock on every path",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkSignature(pass, n)
			case *ast.AssignStmt:
				checkCopy(pass, n)
			case *ast.BlockStmt:
				checkBlock(pass, n)
			}
			return true
		})
	}
	return nil, nil
}

// checkSignature flags receivers and parameters that carry a lock by
// value.
func checkSignature(pass *analysis.Pass, fd *ast.FuncDecl) {
	fields := []*ast.FieldList{fd.Recv, fd.Type.Params}
	for _, fl := range fields {
		if fl == nil {
			continue
		}
		for _, f := range fl.List {
			t := pass.TypesInfo.TypeOf(f.Type)
			if t == nil {
				continue
			}
			if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
				continue
			}
			if containsLock(t, 0) {
				pass.Reportf(f.Pos(), "%s passes a lock by value; use a pointer", fd.Name.Name)
			}
		}
	}
}

// checkCopy flags assignments that copy an existing lock-bearing value.
// Composite literals and conversions construct fresh values and are fine;
// copying an addressable expression (or a call result) is not.
func checkCopy(pass *analysis.Pass, as *ast.AssignStmt) {
	if len(as.Rhs) == 0 {
		return
	}
	for _, rhs := range as.Rhs {
		e := ast.Unparen(rhs)
		switch e.(type) {
		case *ast.CompositeLit, *ast.UnaryExpr, *ast.FuncLit:
			continue
		}
		t := pass.TypesInfo.TypeOf(e)
		if t == nil || !containsLock(t, 0) {
			continue
		}
		pass.Reportf(as.Pos(), "assignment copies a lock value")
	}
}

// containsLock reports whether t is or embeds a sync.Mutex or
// sync.RWMutex by value.
func containsLock(t types.Type, depth int) bool {
	if depth > 4 {
		return false
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
			(obj.Name() == "Mutex" || obj.Name() == "RWMutex" || obj.Name() == "WaitGroup" || obj.Name() == "Once") {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), depth+1)
	}
	return false
}

// checkBlock enforces release discipline for each Lock/RLock statement in
// a block: the next statements must reach a matching defer-unlock or a
// plain unlock without any intervening statement that could return or
// branch out of the block.
func checkBlock(pass *analysis.Pass, block *ast.BlockStmt) {
	for i, stmt := range block.List {
		recv, rlock := lockCall(pass.TypesInfo, stmt)
		if recv == "" {
			continue
		}
		unlock := "Unlock"
		if rlock {
			unlock = "RUnlock"
		}
		if !releasedInBlock(pass.TypesInfo, block.List[i+1:], recv, unlock) {
			pass.Reportf(stmt.Pos(), "%s.%s() is not reliably released in this block: defer %s.%s() immediately, or keep one unconditional unlock with no return in between",
				recv, lockName(rlock), recv, unlock)
		}
	}
}

func lockName(rlock bool) string {
	if rlock {
		return "RLock"
	}
	return "Lock"
}

// lockCall matches an expression statement `recv.Lock()` / `recv.RLock()`
// on a sync mutex, returning the receiver's source text.
func lockCall(info *types.Info, stmt ast.Stmt) (recv string, rlock bool) {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return "", false
	}
	return mutexMethod(info, es.X, "Lock", "RLock")
}

// mutexMethod matches a call to one of the named sync.Mutex/RWMutex
// methods, returning the receiver's source text and whether the reader
// variant matched.
func mutexMethod(info *types.Info, e ast.Expr, writer, reader string) (recv string, isReader bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn := analysis.CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false
	}
	if fn.Name() != writer && fn.Name() != reader {
		return "", false
	}
	return types.ExprString(sel.X), fn.Name() == reader
}

// releasedInBlock scans the statements after a lock for its release. The
// critical section is well-formed when either a matching defer-unlock or
// an unconditional top-level unlock is reached, and every way control can
// escape before that point (return, break, continue, goto inside a
// conditional) is textually preceded by a matching release on its own
// path — the branch-local `mu.Unlock(); return` idiom the singleflight
// and admission paths use. A lock that reaches the end of the block, or
// an escape with no release before it, is a leak.
func releasedInBlock(info *types.Info, rest []ast.Stmt, recv, unlock string) bool {
	var releases []token.Pos // positions of conditional releases seen so far
	for _, stmt := range rest {
		switch s := stmt.(type) {
		case *ast.DeferStmt:
			if isUnlockOf(info, s.Call, recv, unlock) {
				return true
			}
		case *ast.ExprStmt:
			if r, _ := mutexMethod(info, s.X, unlock, unlock); r == recv {
				return true
			}
		}
		escapes, unlocks := lockEvents(info, stmt, recv, unlock)
		for _, esc := range escapes {
			if !anyBefore(releases, esc) && !anyBefore(unlocks, esc) {
				return false
			}
		}
		releases = append(releases, unlocks...)
	}
	return false
}

// lockEvents collects, within one statement (skipping nested function
// literals), the positions of control-flow escapes and of matching
// unlock calls (plain or deferred).
func lockEvents(info *types.Info, stmt ast.Stmt, recv, unlock string) (escapes, unlocks []token.Pos) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt, *ast.BranchStmt:
			escapes = append(escapes, n.Pos())
		case *ast.DeferStmt:
			if isUnlockOf(info, n.Call, recv, unlock) {
				unlocks = append(unlocks, n.Pos())
			}
		case *ast.CallExpr:
			if r, _ := mutexMethod(info, n, unlock, unlock); r == recv {
				unlocks = append(unlocks, n.Pos())
			}
		}
		return true
	})
	return escapes, unlocks
}

// anyBefore reports whether any position in ps precedes pos.
func anyBefore(ps []token.Pos, pos token.Pos) bool {
	for _, p := range ps {
		if p < pos {
			return true
		}
	}
	return false
}

// isUnlockOf matches `defer recv.Unlock()` and the closure form
// `defer func() { ...; recv.Unlock(); ... }()`.
func isUnlockOf(info *types.Info, call *ast.CallExpr, recv, unlock string) bool {
	if r, _ := mutexMethod(info, call, unlock, unlock); r == recv {
		return true
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		found := false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if e, ok := n.(*ast.CallExpr); ok {
				if r, _ := mutexMethod(info, e, unlock, unlock); r == recv {
					found = true
				}
			}
			return !found
		})
		return found
	}
	return false
}
