// Package analysis is a self-contained miniature of the
// golang.org/x/tools/go/analysis framework: the Analyzer / Pass /
// Diagnostic triple, a package loader built on `go list -export` and the
// standard library's gc importer, and a runner that understands
// `//lint:ignore` suppression directives.
//
// The repo's invariants are enforced by five analyzers built on this
// package (see the subdirectories); cmd/leakbound-lint is the
// multichecker that runs them all. The framework deliberately mirrors the
// upstream API (an analyzer is a value with Name, Doc, and a Run function
// over a Pass) so that the analyzers could be ported to the real
// x/tools framework by swapping one import — the module itself stays
// dependency-free and builds hermetically, which is the same property the
// determinism analyzer exists to protect.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check: a name (used in diagnostics and in
// //lint:ignore directives), a short doc string (surfaced by the
// multichecker's -h output), and the Run function applied to each package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) (interface{}, error)
}

// Pass presents one package to an analyzer: its syntax trees, its
// type-checked object graph, and a Report sink for diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
