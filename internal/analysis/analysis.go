// Package analysis is a self-contained miniature of the
// golang.org/x/tools/go/analysis framework: the Analyzer / Pass /
// Diagnostic triple, a package loader built on `go list -export` and the
// standard library's gc importer, and a runner that understands
// `//lint:ignore` suppression directives.
//
// The repo's invariants are enforced by five analyzers built on this
// package (see the subdirectories); cmd/leakbound-lint is the
// multichecker that runs them all. The framework deliberately mirrors the
// upstream API (an analyzer is a value with Name, Doc, and a Run function
// over a Pass) so that the analyzers could be ported to the real
// x/tools framework by swapping one import — the module itself stays
// dependency-free and builds hermetically, which is the same property the
// determinism analyzer exists to protect.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check: a name (used in diagnostics and in
// //lint:ignore directives), a short doc string (surfaced by the
// multichecker's -h output), and exactly one of two run functions. Run is
// the intraprocedural shape, applied to each package in isolation.
// RunProgram is the interprocedural shape: it is invoked once with every
// loaded package, so the analyzer can build a call graph and propagate
// facts across package boundaries (see the callgraph and summary
// subpackages).
type Analyzer struct {
	Name       string
	Doc        string
	Run        func(*Pass) (interface{}, error)
	RunProgram func(*ProgramPass) error
}

// Pass presents one package to an analyzer: its syntax trees, its
// type-checked object graph, and a Report sink for diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Diagnostic is one finding at one position. Chain optionally carries the
// positions of the call sites through which an interprocedural analyzer
// reached Pos (outermost first); the runner consults //lint:ignore
// directives at every chain position as well as at Pos, so a hot-path
// suppression placed on a call site silences everything reached through
// that edge.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	Chain   []token.Pos
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ProgramPass presents the whole loaded program to an interprocedural
// analyzer: every target package (sharing one FileSet — the loader and the
// analysistest harness both guarantee it) and a Report sink. Packages are
// sorted by import path, so program analyzers see a deterministic order.
type ProgramPass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Packages []*Package
	Report   func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos with an optional call
// chain for directive filtering.
func (p *ProgramPass) Reportf(pos token.Pos, chain []token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Chain: chain})
}
