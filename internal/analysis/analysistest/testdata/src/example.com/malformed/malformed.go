// Package malformed holds a reason-less directive: it must surface as a
// "directives" finding and must not suppress anything.
package malformed

//lint:ignore flagme
func MissingReason() {}
