// Package directives exercises the //lint:ignore suppression grammar
// edge cases: multi-analyzer lists, same-line vs line-above placement,
// and reasons that carry trailing prose.
package directives

func Plain() {} // want `flagged function Plain`

//lint:ignore flagme,other suppressed for both analyzers via the comma list
func ListSuppressed() {}

func SameLine() {} //lint:ignore flagme a trailing same-line directive also covers this line

//lint:ignore flagme the reason runs to end of line — trailing prose, punctuation, even // slashes stay part of it
func Above() {}

//lint:ignore other a directive naming only a different analyzer does not cover this line
func OtherOnly() {} // want `flagged function OtherOnly`

//lint:ignore all the wildcard suppresses every analyzer
func Wildcard() {}
