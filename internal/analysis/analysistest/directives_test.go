package analysistest

import (
	"go/ast"
	"path/filepath"
	"strings"
	"testing"

	"go/token"
	"go/types"

	"leakbound/internal/analysis"
)

// flagme reports one diagnostic per function declaration — enough surface
// to observe which lines a directive does and does not cover.
var flagme = &analysis.Analyzer{
	Name: "flagme",
	Doc:  "test analyzer: flags every function declaration",
	Run: func(pass *analysis.Pass) (interface{}, error) {
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok {
					pass.Reportf(fd.Pos(), "flagged function %s", fd.Name.Name)
				}
			}
		}
		return nil, nil
	},
}

// TestIgnoreDirectiveEdgeCases runs the fixture whose want comments pin
// the suppression grammar: comma lists cover several analyzers at once, a
// directive works both trailing on the same line and on the line above,
// reasons may carry arbitrary prose, and a directive naming a different
// analyzer suppresses nothing.
func TestIgnoreDirectiveEdgeCases(t *testing.T) {
	Run(t, "testdata", flagme, "example.com/directives")
}

// TestMalformedReasonDirective checks that a reason-less directive is
// itself a finding and leaves the line it meant to cover unsuppressed.
func TestMalformedReasonDirective(t *testing.T) {
	imp := &fixtureImporter{
		root:    filepath.Join("testdata", "src"),
		fset:    token.NewFileSet(),
		pkgs:    make(map[string]*analysis.Package),
		typed:   make(map[string]*types.Package),
		exports: make(map[string]string),
	}
	pkg, err := imp.load("example.com/malformed")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	findings, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{flagme})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 2 {
		t.Fatalf("findings = %v, want malformed-directive + unsuppressed function", findings)
	}
	if findings[0].Analyzer != "directives" || !strings.Contains(findings[0].Message, "malformed") {
		t.Errorf("finding[0] = %+v, want the malformed //lint:ignore finding", findings[0])
	}
	if findings[1].Analyzer != "flagme" || findings[1].Message != "flagged function MissingReason" {
		t.Errorf("finding[1] = %+v, want the unsuppressed function diagnostic", findings[1])
	}
}
