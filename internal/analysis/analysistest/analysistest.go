// Package analysistest runs an analyzer over fixture packages under a
// testdata/src tree and checks its diagnostics against `// want "regexp"`
// comments — the same contract as golang.org/x/tools/go/analysis/analysistest,
// rebuilt on the standard library so the module needs no dependencies.
//
// A fixture package lives at testdata/src/<import/path>/*.go. Imports of
// other fixture packages are type-checked from source; every other import
// resolves through compiler export data obtained from `go list -export`.
// A line may carry one `// want` comment holding one or more quoted
// regular expressions; each must match a distinct diagnostic reported on
// that line, and diagnostics with no matching want fail the test.
// `//lint:ignore` directives are honored exactly as the real runner
// honors them, so fixtures can demonstrate suppression too.
package analysistest

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"leakbound/internal/analysis"
)

// Run loads each fixture package beneath testdata/src, applies the
// analyzer, and reports mismatches against the fixtures' want comments as
// test errors.
//
// Intraprocedural analyzers run per listed package, matching that
// package's wants in isolation. Interprocedural analyzers (RunProgram)
// run once over every fixture package the listed paths pull in —
// including source-typed dependencies — and wants are checked across all
// of them, so a dependency's file can carry the want for a diagnostic
// reported at the far end of a cross-package call chain.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	imp := &fixtureImporter{
		root:    filepath.Join(testdata, "src"),
		fset:    token.NewFileSet(),
		pkgs:    make(map[string]*analysis.Package),
		typed:   make(map[string]*types.Package),
		exports: make(map[string]string),
	}
	if a.RunProgram != nil {
		for _, path := range pkgPaths {
			if _, err := imp.load(path); err != nil {
				t.Errorf("loading fixture %s: %v", path, err)
				return
			}
		}
		pkgs := imp.loaded()
		findings, err := analysis.Run(pkgs, []*analysis.Analyzer{a})
		if err != nil {
			t.Errorf("running %s on fixtures %v: %v", a.Name, pkgPaths, err)
			return
		}
		checkWants(t, imp.fset, pkgs, findings)
		return
	}
	for _, path := range pkgPaths {
		pkg, err := imp.load(path)
		if err != nil {
			t.Errorf("loading fixture %s: %v", path, err)
			continue
		}
		findings, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
		if err != nil {
			t.Errorf("running %s on fixture %s: %v", a.Name, path, err)
			continue
		}
		checkWants(t, imp.fset, []*analysis.Package{pkg}, findings)
	}
}

// want is one expected-diagnostic regexp and whether a finding claimed it.
type want struct {
	rx      *regexp.Regexp
	matched bool
}

// wantRx pulls the quoted regexps off a want comment: double-quoted Go
// strings or backquoted raw strings, as in upstream analysistest.
var wantRx = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// checkWants compares findings against the packages' want comments.
func checkWants(t *testing.T, fset *token.FileSet, pkgs []*analysis.Package, findings []analysis.Finding) {
	t.Helper()
	wants := make(map[string][]*want) // "file:line" -> expectations
	var files []*ast.File
	for _, pkg := range pkgs {
		files = append(files, pkg.Syntax...)
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, q := range wantRx.FindAllString(c.Text[idx+len("// want "):], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Errorf("%s: bad want pattern %s: %v", key, q, err)
						continue
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", key, pat, err)
						continue
					}
					wants[key] = append(wants[key], &want{rx: rx})
				}
			}
		}
	}
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		claimed := false
		for _, w := range wants[key] {
			if !w.matched && w.rx.MatchString(f.Message) {
				w.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("%s: unexpected diagnostic: %s", key, f.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no diagnostic matched want %q", key, w.rx)
			}
		}
	}
}

// fixtureImporter loads fixture packages from source and everything else
// from gc export data, caching both.
type fixtureImporter struct {
	root    string // testdata/src
	fset    *token.FileSet
	pkgs    map[string]*analysis.Package
	typed   map[string]*types.Package
	exports map[string]string // import path -> export data file
	gc      types.Importer
}

// Import implements types.Importer over the two-tier scheme.
func (imp *fixtureImporter) Import(path string) (*types.Package, error) {
	if p, ok := imp.typed[path]; ok {
		return p, nil
	}
	if dir := filepath.Join(imp.root, filepath.FromSlash(path)); isDir(dir) {
		pkg, err := imp.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if _, ok := imp.exports[path]; !ok {
		if err := imp.listExports(path); err != nil {
			return nil, err
		}
	}
	if imp.gc == nil {
		imp.gc = importer.ForCompiler(imp.fset, "gc", func(p string) (io.ReadCloser, error) {
			exp, ok := imp.exports[p]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", p)
			}
			return os.Open(exp)
		})
	}
	p, err := imp.gc.Import(path)
	if err != nil {
		return nil, err
	}
	imp.typed[path] = p
	return p, nil
}

// load parses and type-checks the fixture package at the import path.
func (imp *fixtureImporter) load(path string) (*analysis.Package, error) {
	if p, ok := imp.pkgs[path]; ok {
		return p, nil
	}
	dir := filepath.Join(imp.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysistest: %w", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(imp.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysistest: parsing %s: %w", e.Name(), err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysistest: no Go files in %s", dir)
	}
	info := analysis.NewTypesInfo()
	conf := types.Config{Importer: imp}
	typesPkg, err := conf.Check(path, imp.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysistest: type-checking %s: %w", path, err)
	}
	pkg := &analysis.Package{
		PkgPath:   path,
		Name:      files[0].Name.Name,
		Fset:      imp.fset,
		Syntax:    files,
		Types:     typesPkg,
		TypesInfo: info,
	}
	imp.pkgs[path] = pkg
	imp.typed[path] = typesPkg
	return pkg, nil
}

// loaded returns every fixture package type-checked so far, sorted by
// import path — the deterministic program a RunProgram analyzer sees.
func (imp *fixtureImporter) loaded() []*analysis.Package {
	pkgs := make([]*analysis.Package, 0, len(imp.pkgs))
	for _, p := range imp.pkgs {
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].PkgPath < pkgs[j].PkgPath })
	return pkgs
}

// listExports asks the go command for the export data of path and its
// dependencies, merging the results into the cache.
func (imp *fixtureImporter) listExports(path string) error {
	cmd := exec.Command("go", "list", "-e", "-deps", "-json", "-export", path)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("analysistest: go list %s: %w (stderr: %s)", path, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct {
			ImportPath string
			Export     string
		}
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return fmt.Errorf("analysistest: decoding go list output: %w", err)
		}
		if p.Export != "" {
			imp.exports[p.ImportPath] = p.Export
		}
	}
	return nil
}

func isDir(path string) bool {
	fi, err := os.Stat(path)
	return err == nil && fi.IsDir()
}
