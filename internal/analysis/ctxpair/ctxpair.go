// Package ctxpair guards the two sibling contracts that keep the public
// API surface honest:
//
// Context pairs. Every Foo with a FooContext sibling (same package, same
// receiver) exists only for call-site convenience; its body must be the
// sanctioned single-statement wrapper
//
//	return FooContext(context.Background(), ...)
//
// (context.TODO() also accepted). Anything else is a drifted duplicate —
// two bodies that started identical and will not stay that way.
//
// Registry factories. Every leakage.Registration.Factory must construct
// policies that are actually reachable from the aggregate fast path: the
// closed-form dispatch in EvaluateAggregate is a `p.(ClosedForm)` type
// assertion, so a factory that returns a value of T while ClosedForm is
// implemented on *T silently falls back to per-bucket evaluation on every
// sweep — the exact regression class the ~160× aggregate kernels exist to
// prevent. The analyzer resolves each factory's concrete return types
// (through function literals and named constructors alike) and flags:
// value/pointer method-set mismatches, interface-typed returns it cannot
// verify, builtin (in-package) policies with no ClosedForm at all, and
// ClosedForm policies that implement MissModel but not MissClosedForm
// (the miss-curve sweep would quietly take the slow path).
//
// Interface lookups deliberately go through each registration's own view
// of the leakage package (composite-literal type → defining package), so
// the checks work identically for source-typed and export-data imports.
package ctxpair

import (
	"go/ast"
	"go/types"
	"strings"

	"leakbound/internal/analysis"
	"leakbound/internal/analysis/callgraph"
)

var Analyzer = &analysis.Analyzer{
	Name:       "ctxpair",
	Doc:        "require Foo/FooContext delegation and statically-dispatchable registry factories",
	RunProgram: run,
}

func run(pass *analysis.ProgramPass) error {
	g := callgraph.Build(pass.Packages)
	for _, pkg := range pass.Packages {
		checkPairs(pass, pkg)
		checkRegistrations(pass, g, pkg)
	}
	return nil
}

// checkPairs enforces the delegation contract within one package.
func checkPairs(pass *analysis.ProgramPass, pkg *analysis.Package) {
	type key struct{ recv, name string }
	decls := make(map[key]*ast.FuncDecl)
	for _, f := range pkg.Syntax {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				decls[key{recvTypeName(pkg, fd), fd.Name.Name}] = fd
			}
		}
	}
	for k, fd := range decls {
		if strings.HasSuffix(k.name, "Context") {
			continue
		}
		sibling, ok := decls[key{k.recv, k.name + "Context"}]
		if !ok {
			continue
		}
		sibFn, _ := pkg.TypesInfo.Defs[sibling.Name].(*types.Func)
		if sibFn == nil {
			continue
		}
		if !delegates(pkg.TypesInfo, fd, sibFn) {
			pass.Reportf(fd.Pos(), nil,
				"%s has a %s sibling but does not delegate to it: the body must be exactly `return %s(context.Background(), ...)` so the pair cannot drift",
				k.name, k.name+"Context", k.name+"Context")
		}
	}
}

// delegates reports whether fd's body is the sanctioned single-statement
// wrapper around its Context sibling.
func delegates(info *types.Info, fd *ast.FuncDecl, sibling *types.Func) bool {
	if len(fd.Body.List) != 1 {
		return false
	}
	var call *ast.CallExpr
	switch st := fd.Body.List[0].(type) {
	case *ast.ReturnStmt:
		if len(st.Results) != 1 {
			return false
		}
		call, _ = ast.Unparen(st.Results[0]).(*ast.CallExpr)
	case *ast.ExprStmt:
		call, _ = st.X.(*ast.CallExpr)
	}
	if call == nil {
		return false
	}
	fn := analysis.CalleeFunc(info, call)
	if fn == nil || callgraph.FuncKey(fn) != callgraph.FuncKey(sibling) {
		return false
	}
	if len(call.Args) == 0 {
		return false
	}
	first, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr)
	if !ok {
		return false
	}
	ctxFn := analysis.CalleeFunc(info, first)
	return analysis.IsPkgFunc(ctxFn, "context", "Background") || analysis.IsPkgFunc(ctxFn, "context", "TODO")
}

// recvTypeName returns the receiver's type name with pointerness erased.
func recvTypeName(pkg *analysis.Package, fd *ast.FuncDecl) string {
	fn, _ := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return ""
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return ""
	}
	t := types.Unalias(sig.Recv().Type())
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// checkRegistrations finds leakage.Registration composite literals in pkg
// and validates their factories' returned policy types.
func checkRegistrations(pass *analysis.ProgramPass, g *callgraph.Graph, pkg *analysis.Package) {
	info := pkg.TypesInfo
	for _, f := range pkg.Syntax {
		ast.Inspect(f, func(x ast.Node) bool {
			cl, ok := x.(*ast.CompositeLit)
			if !ok {
				return true
			}
			named := namedType(info, cl)
			if named == nil || named.Obj().Name() != "Registration" || named.Obj().Pkg() == nil ||
				!analysis.PathHasSuffix(named.Obj().Pkg().Path(), "internal/leakage") {
				return true
			}
			leak := named.Obj().Pkg() // the leakage package in this pkg's universe
			name, factory := registrationFields(info, cl)
			if factory == nil {
				return true
			}
			body, bodyInfo := factoryBody(g, pkg, factory)
			if body == nil {
				return true // external constructor: out of analysis reach
			}
			checkFactoryReturns(pass, bodyInfo, leak, name, body, pkg.PkgPath == leak.Path())
			return true
		})
	}
}

// checkFactoryReturns validates every policy value the factory can return.
func checkFactoryReturns(pass *analysis.ProgramPass, info *types.Info, leak *types.Package, name string, body *ast.BlockStmt, builtin bool) {
	closedForm := ifaceLookup(leak, "ClosedForm")
	missClosed := ifaceLookup(leak, "MissClosedForm")
	missModel := ifaceLookup(leak, "MissModel")
	inspectOwn(body, func(x ast.Node) {
		ret, ok := x.(*ast.ReturnStmt)
		if !ok || len(ret.Results) == 0 {
			return
		}
		res := ret.Results[0]
		tv, ok := info.Types[res]
		if !ok || tv.IsNil() || tv.Type == nil {
			return
		}
		t := tv.Type
		if _, isIface := t.Underlying().(*types.Interface); isIface {
			pass.Reportf(res.Pos(), nil,
				"factory for %q returns an interface-typed value (%s): the closed-form dispatch in EvaluateAggregate cannot be statically verified",
				name, relType(t))
			return
		}
		if closedForm == nil {
			return
		}
		switch {
		case types.Implements(t, closedForm):
			if missModel != nil && missClosed != nil &&
				types.Implements(t, missModel) && !types.Implements(t, missClosed) {
				pass.Reportf(res.Pos(), nil,
					"factory for %q returns %s, which implements ClosedForm and MissModel but not MissClosedForm: induced-miss sweeps silently fall back to per-bucket evaluation",
					name, relType(t))
			}
		case implementsViaPointer(t, closedForm):
			pass.Reportf(res.Pos(), nil,
				"factory for %q returns %s by value but ClosedForm is implemented on *%s: EvaluateAggregate's dispatch will silently fall back to per-bucket evaluation",
				name, relType(t), relType(t))
		case builtin:
			pass.Reportf(res.Pos(), nil,
				"builtin factory for %q returns %s, which has no ClosedForm: every aggregate sweep takes the slow path",
				name, relType(t))
		}
	})
}

// factoryBody resolves a Factory field expression to the function body
// that constructs policies, plus the TypesInfo that body was checked
// under — a literal in place, or a named constructor declared anywhere in
// the program.
func factoryBody(g *callgraph.Graph, pkg *analysis.Package, factory ast.Expr) (*ast.BlockStmt, *types.Info) {
	switch e := ast.Unparen(factory).(type) {
	case *ast.FuncLit:
		return e.Body, pkg.TypesInfo
	case *ast.Ident, *ast.SelectorExpr:
		var fn *types.Func
		switch e := e.(type) {
		case *ast.Ident:
			fn, _ = pkg.TypesInfo.Uses[e].(*types.Func)
		case *ast.SelectorExpr:
			fn, _ = pkg.TypesInfo.Uses[e.Sel].(*types.Func)
		}
		if n := g.Lookup(fn); n != nil && n.Decl != nil {
			return n.Decl.Body, n.Pkg.TypesInfo
		}
	}
	return nil, nil
}

// registrationFields extracts the Name literal (for messages) and the
// Factory expression from a Registration composite literal.
func registrationFields(info *types.Info, cl *ast.CompositeLit) (string, ast.Expr) {
	name := "?"
	var factory ast.Expr
	for _, elt := range cl.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		switch key.Name {
		case "Name":
			if tv, ok := info.Types[kv.Value]; ok && tv.Value != nil {
				name = strings.Trim(tv.Value.String(), `"`)
			}
		case "Factory":
			factory = kv.Value
		}
	}
	return name, factory
}

func namedType(info *types.Info, cl *ast.CompositeLit) *types.Named {
	tv, ok := info.Types[cl]
	if !ok || tv.Type == nil {
		return nil
	}
	named, _ := types.Unalias(tv.Type).(*types.Named)
	return named
}

func ifaceLookup(pkg *types.Package, name string) *types.Interface {
	tn, _ := pkg.Scope().Lookup(name).(*types.TypeName)
	if tn == nil {
		return nil
	}
	iface, _ := tn.Type().Underlying().(*types.Interface)
	return iface
}

func implementsViaPointer(t types.Type, iface *types.Interface) bool {
	if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
		return false
	}
	return types.Implements(types.NewPointer(t), iface)
}

func relType(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

// inspectOwn walks root without descending into nested function literals.
func inspectOwn(root *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(root, func(x ast.Node) bool {
		if x == nil {
			return false
		}
		visit(x)
		_, isLit := x.(*ast.FuncLit)
		return !isLit
	})
}
