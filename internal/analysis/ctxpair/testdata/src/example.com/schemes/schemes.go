// Package schemes registers third-party policies from outside the
// leakage package: factories resolve through named constructors, and the
// no-ClosedForm check is builtin-only.
package schemes

import "example.com/internal/leakage"

// Memo implements ClosedForm on the pointer only.
type Memo struct{ accuracy float64 }

func (Memo) Name() string        { return "memo" }
func (m *Memo) EnergyCurve() int { return 1 }

// Plain has no closed form; outside the leakage package that is allowed
// (the sweep falls back knowingly), so no finding.
type Plain struct{}

func (Plain) Name() string { return "plain" }

// newMemo is a named constructor: the analyzer resolves the Factory
// reference to this body — the finding is two steps from the
// registration.
func newMemo(leakage.Params) (leakage.Policy, error) {
	return Memo{accuracy: 0.9}, nil // want `factory for "memo" returns schemes.Memo by value but ClosedForm is implemented on \*schemes.Memo`
}

// build returns the interface, hiding the concrete type.
func build() leakage.Policy { return Plain{} }

// Register wires the schemes into a registry.
func Register(r *leakage.Registry) {
	r.MustRegister(leakage.Registration{
		Name:    "memo",
		Factory: newMemo,
	})
	r.MustRegister(leakage.Registration{
		Name:    "plain",
		Factory: func(leakage.Params) (leakage.Policy, error) { return Plain{}, nil },
	})
	r.MustRegister(leakage.Registration{
		Name: "hidden",
		Factory: func(leakage.Params) (leakage.Policy, error) {
			p := build()
			return p, nil // want `factory for "hidden" returns an interface-typed value \(leakage.Policy\)`
		},
	})
}
