// Package pairs exercises the Foo/FooContext delegation contract.
package pairs

import "context"

// Runner carries method pairs.
type Runner struct{ n int }

// RunContext is the real implementation.
func (r *Runner) RunContext(ctx context.Context, x int) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return r.n + x, nil
}

// Run delegates with the sanctioned wrapper: no finding.
func (r *Runner) Run(x int) (int, error) {
	return r.RunContext(context.Background(), x)
}

// SweepContext is the real implementation.
func (r *Runner) SweepContext(ctx context.Context, xs []int) (int, error) {
	total := 0
	for _, x := range xs {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		total += x
	}
	return total, nil
}

// Sweep duplicates SweepContext's body instead of delegating — the drift
// this analyzer exists to catch.
func (r *Runner) Sweep(xs []int) (int, error) { // want `Sweep has a SweepContext sibling but does not delegate`
	total := 0
	for _, x := range xs {
		total += x
	}
	return total, nil
}

// EvalContext is the real implementation.
func EvalContext(ctx context.Context, x int) int {
	_ = ctx
	return x * 2
}

// Eval delegates but invents its own context instead of Background/TODO —
// still a contract violation.
func Eval(x int) int { // want `Eval has a EvalContext sibling but does not delegate`
	ctx := context.WithValue(context.Background(), "k", "v")
	return EvalContext(ctx, x)
}

// TodoContext is the real implementation.
func TodoContext(ctx context.Context) int { _ = ctx; return 1 }

// Todo uses context.TODO(), which is accepted.
func Todo() int {
	return TodoContext(context.TODO())
}
