// Package leakage mirrors the real registry surface: Registration
// factories must return policies reachable from the closed-form dispatch.
package leakage

// Params stands in for the real parameter bag.
type Params map[string]string

// Policy is the evaluated interface.
type Policy interface{ Name() string }

// ClosedForm is the aggregate fast-path dispatch target.
type ClosedForm interface{ EnergyCurve() int }

// MissClosedForm is the induced-miss fast-path sibling.
type MissClosedForm interface{ MissCurve() int }

// MissModel is the slow-path miss interface.
type MissModel interface{ IntervalMisses() int }

// Registration declares one scheme.
type Registration struct {
	Name    string
	Doc     string
	Factory func(Params) (Policy, error)
}

// Registry holds registrations.
type Registry struct{ regs []Registration }

// MustRegister records a registration.
func (r *Registry) MustRegister(reg Registration) { r.regs = append(r.regs, reg) }

// Good implements ClosedForm on the pointer and is returned as one.
type Good struct{}

func (g *Good) Name() string     { return "good" }
func (g *Good) EnergyCurve() int { return 1 }

// ByValue implements ClosedForm on the pointer only, but its factory
// returns it by value — the silent-fallback footgun.
type ByValue struct{}

func (ByValue) Name() string        { return "byvalue" }
func (v *ByValue) EnergyCurve() int { return 1 }

// NoCurve is a builtin with no closed form at all.
type NoCurve struct{}

func (NoCurve) Name() string { return "nocurve" }

// Parity has an energy closed form and a miss model but no miss closed
// form.
type Parity struct {
	misses int
}

func (Parity) Name() string          { return "parity" }
func (Parity) EnergyCurve() int      { return 1 }
func (p Parity) IntervalMisses() int { return p.misses }

func newBuiltins() *Registry {
	r := &Registry{}
	r.MustRegister(Registration{
		Name:    "good",
		Factory: func(Params) (Policy, error) { return &Good{}, nil },
	})
	r.MustRegister(Registration{
		Name: "byvalue",
		Factory: func(Params) (Policy, error) {
			return ByValue{}, nil // want `factory for "byvalue" returns leakage.ByValue by value but ClosedForm is implemented on \*leakage.ByValue`
		},
	})
	r.MustRegister(Registration{
		Name: "nocurve",
		Factory: func(Params) (Policy, error) {
			return NoCurve{}, nil // want `builtin factory for "nocurve" returns leakage.NoCurve, which has no ClosedForm`
		},
	})
	r.MustRegister(Registration{
		Name: "parity",
		Factory: func(Params) (Policy, error) {
			return Parity{}, nil // want `implements ClosedForm and MissModel but not MissClosedForm`
		},
	})
	return r
}
