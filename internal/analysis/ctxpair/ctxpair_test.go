package ctxpair_test

import (
	"testing"

	"leakbound/internal/analysis/analysistest"
	"leakbound/internal/analysis/ctxpair"
)

func TestCtxpair(t *testing.T) {
	analysistest.Run(t, "testdata", ctxpair.Analyzer,
		"example.com/pairs",
		"example.com/schemes",
	)
}
