package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Finding is one reported diagnostic after directive filtering, with its
// position resolved for printing.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Run applies every analyzer to every package and returns the surviving
// findings sorted by file, line, column, then analyzer name — the output
// order is deterministic by construction, like everything else in this
// repo. Diagnostics suppressed by a well-formed `//lint:ignore` directive
// are dropped; malformed directives are themselves findings.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		dirs, bad := collectDirectives(pkg)
		findings = append(findings, bad...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			pass.Report = func(d Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				if dirs.suppresses(a.Name, pos) {
					return
				}
				findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// directivePrefix is the suppression marker: a comment of the form
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// suppresses diagnostics from the named analyzers on the directive's own
// line and on the line immediately below it (so it works both as an
// end-of-line comment and as a comment above the offending statement).
// The reason is mandatory: suppressions without a recorded justification
// are treated as findings.
const directivePrefix = "//lint:ignore "

// directiveSet indexes suppressions by file and line.
type directiveSet map[string]map[int][]string // file -> line -> analyzer names

func (d directiveSet) suppresses(analyzer string, pos token.Position) bool {
	lines := d[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range lines[line] {
			if name == analyzer || name == "all" {
				return true
			}
		}
	}
	return false
}

// collectDirectives scans a package's comments for lint:ignore directives,
// returning the suppression index and a finding per malformed directive.
func collectDirectives(pkg *Package) (directiveSet, []Finding) {
	dirs := make(directiveSet)
	var bad []Finding
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, directivePrefix))
				names, reason, _ := strings.Cut(rest, " ")
				pos := pkg.Fset.Position(c.Pos())
				if names == "" || strings.TrimSpace(reason) == "" {
					bad = append(bad, Finding{
						Analyzer: "directives",
						Pos:      pos,
						Message:  "malformed //lint:ignore directive: want `//lint:ignore <analyzer> <reason>`",
					})
					continue
				}
				lines := dirs[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					dirs[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], strings.Split(names, ",")...)
			}
		}
	}
	return dirs, bad
}
