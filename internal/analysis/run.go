package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
	"time"
)

// Finding is one reported diagnostic after directive filtering, with its
// position resolved for printing.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Timing records how long one analyzer spent across the whole run —
// summed over packages for intraprocedural analyzers, the single program
// pass for interprocedural ones.
type Timing struct {
	Name     string
	Duration time.Duration
}

// Run applies every analyzer to every package and returns the surviving
// findings sorted by file, line, column, then analyzer name — the output
// order is deterministic by construction, like everything else in this
// repo. Diagnostics suppressed by a well-formed `//lint:ignore` directive
// are dropped; malformed directives are themselves findings.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	findings, _, err := RunTimed(pkgs, analyzers)
	return findings, err
}

// RunTimed is Run, additionally reporting per-analyzer wall time in the
// analyzers' presentation order (the `make lint` timing table).
func RunTimed(pkgs []*Package, analyzers []*Analyzer) ([]Finding, []Timing, error) {
	var findings []Finding
	dirs := make(directiveSet)
	for _, pkg := range pkgs {
		bad := collectDirectives(pkg, dirs)
		findings = append(findings, bad...)
	}
	// A diagnostic survives only if no directive covers its own position
	// or any call-site position on its chain.
	keep := func(name string, fset *token.FileSet, d Diagnostic) (Finding, bool) {
		pos := fset.Position(d.Pos)
		if dirs.suppresses(name, pos) {
			return Finding{}, false
		}
		for _, cp := range d.Chain {
			if dirs.suppresses(name, fset.Position(cp)) {
				return Finding{}, false
			}
		}
		return Finding{Analyzer: name, Pos: pos, Message: d.Message}, true
	}
	elapsed := make(map[string]time.Duration, len(analyzers))
	for _, a := range analyzers {
		start := time.Now()
		switch {
		case a.RunProgram != nil:
			if len(pkgs) == 0 {
				break
			}
			pass := &ProgramPass{
				Analyzer: a,
				Fset:     pkgs[0].Fset,
				Packages: pkgs,
			}
			pass.Report = func(d Diagnostic) {
				if f, ok := keep(a.Name, pass.Fset, d); ok {
					findings = append(findings, f)
				}
			}
			if err := a.RunProgram(pass); err != nil {
				return nil, nil, fmt.Errorf("analysis: %s: %w", a.Name, err)
			}
		default:
			for _, pkg := range pkgs {
				pass := &Pass{
					Analyzer:  a,
					Fset:      pkg.Fset,
					Files:     pkg.Syntax,
					Pkg:       pkg.Types,
					TypesInfo: pkg.TypesInfo,
				}
				pass.Report = func(d Diagnostic) {
					if f, ok := keep(a.Name, pkg.Fset, d); ok {
						findings = append(findings, f)
					}
				}
				if _, err := a.Run(pass); err != nil {
					return nil, nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.PkgPath, err)
				}
			}
		}
		elapsed[a.Name] += time.Since(start)
	}
	timings := make([]Timing, 0, len(analyzers))
	for _, a := range analyzers {
		timings = append(timings, Timing{Name: a.Name, Duration: elapsed[a.Name]})
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, timings, nil
}

// directivePrefix is the suppression marker: a comment of the form
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// suppresses diagnostics from the named analyzers on the directive's own
// line and on the line immediately below it (so it works both as an
// end-of-line comment and as a comment above the offending statement).
// The reason is mandatory: suppressions without a recorded justification
// are treated as findings.
const directivePrefix = "//lint:ignore "

// directiveSet indexes suppressions by file and line.
type directiveSet map[string]map[int][]string // file -> line -> analyzer names

func (d directiveSet) suppresses(analyzer string, pos token.Position) bool {
	lines := d[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range lines[line] {
			if name == analyzer || name == "all" {
				return true
			}
		}
	}
	return false
}

// DirectiveIndex is a read-only view of the //lint:ignore directives in a
// set of packages, for analyzers that need to know whether a site has
// already been human-sanctioned (detflow treats a time.Now carrying a
// determinism suppression as a reviewed non-source rather than re-raising
// it through every caller).
type DirectiveIndex struct {
	set directiveSet
}

// Directives indexes the well-formed suppression directives of pkgs
// (malformed ones are the runner's business and are ignored here).
func Directives(pkgs ...*Package) DirectiveIndex {
	set := make(directiveSet)
	for _, pkg := range pkgs {
		collectDirectives(pkg, set)
	}
	return DirectiveIndex{set: set}
}

// Covers reports whether a directive naming the analyzer (or "all")
// suppresses findings at pos.
func (ix DirectiveIndex) Covers(analyzer string, pos token.Position) bool {
	return ix.set.suppresses(analyzer, pos)
}

// collectDirectives scans a package's comments for lint:ignore directives,
// merging the suppressions into dirs and returning a finding per malformed
// directive.
func collectDirectives(pkg *Package, dirs directiveSet) []Finding {
	var bad []Finding
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, directivePrefix))
				names, reason, _ := strings.Cut(rest, " ")
				pos := pkg.Fset.Position(c.Pos())
				if names == "" || strings.TrimSpace(reason) == "" {
					bad = append(bad, Finding{
						Analyzer: "directives",
						Pos:      pos,
						Message:  "malformed //lint:ignore directive: want `//lint:ignore <analyzer> <reason>`",
					})
					continue
				}
				lines := dirs[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					dirs[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], strings.Split(names, ",")...)
			}
		}
	}
	return bad
}
