package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// loadSource type-checks one import-free source string into a Package.
func loadSource(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := NewTypesInfo()
	conf := types.Config{}
	pkg, err := conf.Check("fixture", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return &Package{PkgPath: "fixture", Name: f.Name.Name, Fset: fset, Syntax: []*ast.File{f}, Types: pkg, TypesInfo: info}
}

// funcFlagger reports one diagnostic per function declaration.
var funcFlagger = &Analyzer{
	Name: "flagfuncs",
	Doc:  "test analyzer: flags every function declaration",
	Run: func(pass *Pass) (interface{}, error) {
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok {
					pass.Reportf(fd.Pos(), "function %s", fd.Name.Name)
				}
			}
		}
		return nil, nil
	},
}

func TestRunDirectiveSuppression(t *testing.T) {
	pkg := loadSource(t, `package fixture

func Flagged() {}

//lint:ignore flagfuncs justified in the test
func Suppressed() {}

//lint:ignore othercheck wrong analyzer name does not suppress
func WrongName() {}

//lint:ignore all wildcard suppresses every analyzer
func Wildcard() {}
`)
	findings, err := Run([]*Package{pkg}, []*Analyzer{funcFlagger})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, f := range findings {
		got = append(got, f.Message)
	}
	want := []string{"function Flagged", "function WrongName"}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("findings = %v, want %v", got, want)
	}
}

func TestRunMalformedDirective(t *testing.T) {
	pkg := loadSource(t, `package fixture

//lint:ignore flagfuncs
func MissingReason() {}
`)
	findings, err := Run([]*Package{pkg}, []*Analyzer{funcFlagger})
	if err != nil {
		t.Fatal(err)
	}
	// The malformed directive is itself a finding, and — lacking a reason —
	// it does not suppress the function diagnostic.
	if len(findings) != 2 {
		t.Fatalf("findings = %v, want malformed-directive + function", findings)
	}
	if findings[0].Analyzer != "directives" || !strings.Contains(findings[0].Message, "malformed") {
		t.Errorf("first finding = %+v, want malformed directive", findings[0])
	}
	if findings[1].Message != "function MissingReason" {
		t.Errorf("second finding = %+v, want the unsuppressed function", findings[1])
	}
}

func TestRunFindingsSorted(t *testing.T) {
	pkg := loadSource(t, `package fixture

func B() {}

func A() {}
`)
	reverse := &Analyzer{
		Name: "reverse",
		Doc:  "reports in reverse declaration order to exercise sorting",
		Run: func(pass *Pass) (interface{}, error) {
			decls := pass.Files[0].Decls
			for i := len(decls) - 1; i >= 0; i-- {
				if fd, ok := decls[i].(*ast.FuncDecl); ok {
					pass.Reportf(fd.Pos(), "decl %s", fd.Name.Name)
				}
			}
			return nil, nil
		},
	}
	findings, err := Run([]*Package{pkg}, []*Analyzer{reverse})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 2 || findings[0].Message != "decl B" || findings[1].Message != "decl A" {
		t.Errorf("findings not in position order: %v", findings)
	}
}

func TestLoadTypeChecksModulePackages(t *testing.T) {
	pkgs, err := Load(".", "./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) < 6 {
		t.Fatalf("Load(./...) from internal/analysis = %d packages, want the framework plus five analyzers", len(pkgs))
	}
	for _, p := range pkgs {
		if p.Types == nil || p.TypesInfo == nil || len(p.Syntax) == 0 {
			t.Errorf("package %s loaded without types or syntax", p.PkgPath)
		}
		if !strings.HasPrefix(p.PkgPath, "leakbound/internal/analysis") {
			t.Errorf("unexpected package %s from ./... in internal/analysis", p.PkgPath)
		}
	}
}
