package analysis

import (
	"encoding/json"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// SARIF output: the minimal subset of the Static Analysis Results
// Interchange Format 2.1.0 that GitHub code scanning consumes — one run,
// one tool driver with a rule per analyzer, and one result per finding
// with a physical location. URIs are emitted relative to root so the
// upload annotates PR diffs regardless of the runner's checkout path.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF encodes findings as a SARIF 2.1.0 log. analyzers supplies
// the rule table (every registered analyzer appears as a rule even with
// zero findings, plus the implicit "directives" rule for malformed
// suppressions); root, when non-empty, is stripped from filenames so the
// log carries repo-relative URIs.
func WriteSARIF(w io.Writer, root string, analyzers []*Analyzer, findings []Finding) error {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	for _, a := range analyzers {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: doc}})
	}
	rules = append(rules, sarifRule{
		ID:               "directives",
		ShortDescription: sarifMessage{Text: "report malformed //lint:ignore suppression directives"},
	})
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: sarifURI(root, f.Pos.Filename)},
					Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "leakbound-lint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// sarifURI rewrites an absolute filename to a forward-slash path relative
// to root; filenames outside root (or with no root given) pass through
// slash-normalized.
func sarifURI(root, filename string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, filename); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(filename)
}
