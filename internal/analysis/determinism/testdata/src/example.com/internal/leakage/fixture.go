// Package leakage is a determinism fixture standing in for a
// result-producing package (its import path ends in internal/leakage, so
// the analyzer applies).
package leakage

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// Clock reads the wall clock in the result path.
func Clock() int64 {
	t := time.Now() // want `time.Now in result-producing package`
	return t.Unix()
}

// SuppressedClock demonstrates directive suppression.
func SuppressedClock() int64 {
	//lint:ignore determinism fixture: telemetry-only wall clock
	t := time.Now()
	return t.Unix()
}

// Random draws from math/rand in the result path.
func Random() int {
	return rand.Intn(8) // want `math/rand in result-producing package`
}

// PrintMap hands a map straight to fmt.
func PrintMap(m map[string]float64) string {
	return fmt.Sprint(m) // want `map passed to fmt.Sprint`
}

// CollectUnsorted appends in map iteration order and never sorts.
func CollectUnsorted(m map[string]float64) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys in map iteration order without a later sort`
	}
	return keys
}

// CollectSorted is the canonical fix: collect, then sort.
func CollectSorted(m map[string]float64) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// SumFloats accumulates floats in map iteration order; float addition is
// not associative, so the total depends on the order.
func SumFloats(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want `floating-point accumulation into total in map iteration order`
	}
	return total
}

// SumInts is fine: integer addition is associative.
func SumInts(m map[string]int) int {
	var total int
	for _, v := range m {
		total += v
	}
	return total
}

// EmitUnsorted prints during map iteration.
func EmitUnsorted(m map[string]int, sb *strings.Builder) {
	for k := range m {
		fmt.Println(k)    // want `fmt.Println inside a map range`
		sb.WriteString(k) // want `WriteString call inside a map range`
	}
}

// RangeSlice is fine: slices iterate in index order.
func RangeSlice(vs []float64) float64 {
	var total float64
	for _, v := range vs {
		total += v
	}
	return total
}
