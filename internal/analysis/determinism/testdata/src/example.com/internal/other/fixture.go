// Package other is not a result-producing package, so the determinism
// analyzer must stay silent here even for constructs it would flag in
// internal/leakage.
package other

import "time"

// Clock is allowed: serving and telemetry code may read the wall clock.
func Clock() int64 {
	return time.Now().Unix()
}
