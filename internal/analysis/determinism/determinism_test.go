package determinism_test

import (
	"testing"

	"leakbound/internal/analysis/analysistest"
	"leakbound/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", determinism.Analyzer,
		"example.com/internal/leakage",
		"example.com/internal/other",
	)
}
