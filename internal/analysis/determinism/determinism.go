// Package determinism flags nondeterminism hazards in the packages that
// produce the paper's numbers. The oracle argument (Equations 1–3 and the
// appendix optimality proof) is only checkable because every run of
// Figure 7/8/Table 2 yields bit-identical energies; map iteration order,
// wall-clock reads, and random sources are the three ways Go code
// silently loses that property.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"leakbound/internal/analysis"
)

// Analyzer flags order- and clock-dependent constructs in result-producing
// packages.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "flag map-iteration-order dependence, wall-clock reads, and random sources in result-producing packages",
	Run:  run,
}

// resultPackages matches the packages whose outputs are the paper's
// numbers; everything else (servers, CLIs, telemetry plumbing) may
// legitimately read clocks.
var resultPackages = regexp.MustCompile(`(^|/)internal/(leakage|interval|experiments|report|stats)$`)

func run(pass *analysis.Pass) (interface{}, error) {
	if !resultPackages.MatchString(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, file := range pass.Files {
		checkClockAndRand(pass, file)
		checkMapPrints(pass, file)
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if t := pass.TypesInfo.TypeOf(rs.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					checkMapRange(pass, file, rs)
				}
			}
			return true
		})
	}
	return nil, nil
}

// checkClockAndRand flags time.Now calls and any use of math/rand.
func checkClockAndRand(pass *analysis.Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := analysis.CalleeFunc(pass.TypesInfo, n); analysis.IsPkgFunc(fn, "time", "Now") {
				pass.Reportf(n.Pos(), "time.Now in result-producing package: wall clock must not influence results")
			}
		case *ast.SelectorExpr:
			if id, ok := n.X.(*ast.Ident); ok {
				if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok {
					switch pn.Imported().Path() {
					case "math/rand", "math/rand/v2":
						pass.Reportf(n.Pos(), "math/rand in result-producing package: randomness must not influence results")
					}
				}
			}
		}
		return true
	})
}

// checkMapPrints flags map values handed directly to fmt's print family:
// even though fmt has sorted map keys since Go 1.12, result output stays
// canonical-by-construction (explicit sorted emission), never by fmt's
// courtesy.
func checkMapPrints(pass *analysis.Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || !isPrintName(fn.Name()) {
			return true
		}
		for _, arg := range call.Args {
			if t := pass.TypesInfo.TypeOf(arg); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					pass.Reportf(arg.Pos(), "map passed to fmt.%s: emit results in explicitly sorted order", fn.Name())
				}
			}
		}
		return true
	})
}

func isPrintName(name string) bool {
	for _, p := range []string{"Print", "Fprint", "Sprint"} {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// checkMapRange flags order-sensitive work inside a map-range body:
// appends to slices that outlive the loop (unless the slice is sorted
// afterwards), floating-point accumulation into outer variables (addition
// is not associative), and output writes.
func checkMapRange(pass *analysis.Pass, file *ast.File, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkRangeAssign(pass, file, rs, n)
		case *ast.CallExpr:
			if fn := analysis.CalleeFunc(pass.TypesInfo, n); fn != nil {
				if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && isPrintName(fn.Name()) {
					pass.Reportf(n.Pos(), "fmt.%s inside a map range: output depends on map iteration order", fn.Name())
				} else if sig := fn.Type().(*types.Signature); sig.Recv() != nil && isWriteName(fn.Name()) {
					pass.Reportf(n.Pos(), "%s call inside a map range: output depends on map iteration order", fn.Name())
				}
			}
		}
		return true
	})
}

func isWriteName(name string) bool {
	return name == "Write" || name == "WriteString" || name == "WriteByte" || name == "WriteRune"
}

// checkRangeAssign handles the two assignment shapes inside a map range.
func checkRangeAssign(pass *analysis.Pass, file *ast.File, rs *ast.RangeStmt, as *ast.AssignStmt) {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		for _, lhs := range as.Lhs {
			obj := lhsObject(pass.TypesInfo, lhs)
			if obj == nil || within(obj.Pos(), rs) {
				continue
			}
			if b, ok := obj.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
				pass.Reportf(as.Pos(), "floating-point accumulation into %s in map iteration order: float addition is not associative", obj.Name())
			}
		}
	case token.ASSIGN, token.DEFINE:
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isBuiltinAppend(pass.TypesInfo, call) || i >= len(as.Lhs) {
				continue
			}
			obj := lhsObject(pass.TypesInfo, as.Lhs[i])
			if obj == nil || within(obj.Pos(), rs) {
				continue
			}
			if sortedAfter(pass.TypesInfo, file, rs, obj) {
				continue
			}
			pass.Reportf(as.Pos(), "append to %s in map iteration order without a later sort", obj.Name())
		}
	}
}

// isBuiltinAppend matches a call to the append builtin.
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// lhsObject resolves the variable an assignment target refers to.
func lhsObject(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := info.Defs[e]; obj != nil {
			return obj
		}
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}

func within(pos token.Pos, n ast.Node) bool {
	return pos >= n.Pos() && pos <= n.End()
}

// sortedAfter reports whether a sort.* or slices.Sort* call mentioning obj
// appears after the range statement — the canonical collect-then-sort fix.
func sortedAfter(info *types.Info, file *ast.File, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rs.End() {
			return true
		}
		fn := analysis.CalleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			used := false
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && info.Uses[id] == obj {
					used = true
				}
				return !used
			})
			if used {
				found = true
			}
		}
		return !found
	})
	return found
}
