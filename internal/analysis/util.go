package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// errorType is the universe's error interface.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// IsErrorType reports whether t implements the error interface.
func IsErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorType)
}

// CalleeFunc resolves the statically-known function or method a call
// invokes, or nil for calls through function values, conversions, and
// builtins.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fn]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[fn.Sel] // package-qualified call
		}
	}
	f, _ := obj.(*types.Func)
	return f
}

// IsPkgFunc reports whether fn is the named function of the named package
// (matched by import-path suffix, so fixture packages under testdata can
// stand in for real ones).
func IsPkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Name() == name && fn.Pkg() != nil && PathHasSuffix(fn.Pkg().Path(), pkgPath)
}

// PathHasSuffix reports whether an import path equals suffix or ends with
// "/"+suffix — e.g. both "internal/telemetry" and
// "example.com/internal/telemetry" match the suffix "internal/telemetry".
func PathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// HasContextParam reports whether the signature's first parameter is a
// context.Context.
func HasContextParam(sig *types.Signature) bool {
	return sig != nil && sig.Params().Len() > 0 && IsContextType(sig.Params().At(0).Type())
}

// InspectFuncs walks every function declaration and function literal in
// the file, calling fn with the enclosing declaration's name ("" for
// literals outside a declaration) and the body.
func InspectFuncs(f *ast.File, fn func(name string, decl *ast.FuncDecl, body *ast.BlockStmt)) {
	for _, d := range f.Decls {
		decl, ok := d.(*ast.FuncDecl)
		if !ok || decl.Body == nil {
			continue
		}
		fn(decl.Name.Name, decl, decl.Body)
	}
}

// ContainsReturn reports whether the statement contains a return or a
// branching statement (break/continue/goto) anywhere outside nested
// function literals — the test the locks analyzer uses for "does control
// possibly leave this span".
func ContainsReturn(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt, *ast.BranchStmt:
			found = true
		}
		return !found
	})
	return found
}
