package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
	"testing"
)

func TestAllocationsClassifier(t *testing.T) {
	pkg := loadSource(t, `package fixture

type box interface{ m() }

type impl struct{ v int }

func (impl) m() {}

type big struct{ a, b int }

func sink(box)       {}
func variadic(...int) {}

func Subject(bs []byte, n int) box {
	_ = make([]int, n)            // make
	_ = new(big)                  // new
	_ = &big{}                    // &composite
	_ = []int{1, 2}               // slice literal
	_ = map[int]int{}             // map literal
	s := append([]int(nil), 1)    // append (+ slice literal conversion operand is nil: no box)
	_ = s
	f := func() int { return n }  // capturing closure
	_ = f
	g := func() int { return 1 }  // non-capturing: not flagged
	_ = g
	v := impl{}
	h := v.m                      // method value
	_ = h
	_ = string(bs)                // string conversion
	str := "a"
	_ = str + "b"                 // concatenation
	go func() {}()                // go statement
	sink(impl{v: n})              // implicit boxing at argument
	variadic(n, n)                // variadic slice
	return impl{v: n}             // boxing at return
}
`)
	var sig *types.Signature
	var body *ast.BlockStmt
	for _, d := range pkg.Syntax[0].Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "Subject" {
			sig = pkg.TypesInfo.Defs[fd.Name].(*types.Func).Type().(*types.Signature)
			body = fd.Body
		}
	}
	allocs := Allocations(pkg.TypesInfo, body, sig)
	var got []string
	for _, a := range allocs {
		got = append(got, a.What)
	}
	sort.Strings(got)
	want := []string{
		"&composite literal allocates",
		"append may grow its backing array",
		"argument is boxed into interface fixture.box",
		"closure captures variables and allocates",
		"conversion between string and []byte copies",
		"go statement spawns a goroutine",
		"make allocates",
		"map literal allocates",
		"method value allocates a bound-method closure",
		"new allocates",
		"return value is boxed into interface fixture.box",
		"slice literal allocates",
		"string concatenation allocates",
		"variadic call allocates its argument slice",
	}
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("Allocations =\n  %s\nwant\n  %s", strings.Join(got, "\n  "), strings.Join(want, "\n  "))
	}
}

func TestAllocationsSkipsNestedLiteralBodies(t *testing.T) {
	pkg := loadSource(t, `package fixture

func Outer() func() []int {
	return func() []int { return make([]int, 1) }
}
`)
	var body *ast.BlockStmt
	var sig *types.Signature
	for _, d := range pkg.Syntax[0].Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "Outer" {
			body = fd.Body
			sig = pkg.TypesInfo.Defs[fd.Name].(*types.Func).Type().(*types.Signature)
		}
	}
	allocs := Allocations(pkg.TypesInfo, body, sig)
	// The make belongs to the literal node; Outer itself allocates nothing
	// (the literal captures no variables).
	if len(allocs) != 0 {
		t.Errorf("Outer allocations = %+v, want none", allocs)
	}
}
