package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, parsed, type-checked package ready for analysis.
type Package struct {
	PkgPath   string
	Name      string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Load expands patterns with the go command and returns the matched
// packages (dependencies are type-checked from compiler export data, not
// re-analyzed). dir is the working directory for the go command — the
// module root when analyzing this repo. Only non-test sources are loaded:
// the invariants the analyzers enforce are about what ships in the
// simulation path, and test files are exempt from most of them anyway.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"."}
	}
	args := append([]string{"list", "-e", "-deps", "-json", "-export"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list: %w (stderr: %s)", err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			q := p
			targets = append(targets, &q)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		pkg, err := checkPackage(fset, t, exports)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// checkPackage parses and type-checks one target package against the
// export data of its dependencies.
func checkPackage(fset *token.FileSet, t *listPackage, exports map[string]string) (*Package, error) {
	var files []*ast.File
	for _, name := range t.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := t.ImportMap[path]; ok {
			path = mapped
		}
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	}
	info := NewTypesInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	typesPkg, err := conf.Check(t.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", t.ImportPath, err)
	}
	return &Package{
		PkgPath:   t.ImportPath,
		Name:      t.Name,
		Fset:      fset,
		Syntax:    files,
		Types:     typesPkg,
		TypesInfo: info,
	}, nil
}

// NewTypesInfo returns a types.Info with every map the analyzers consult
// allocated.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
