package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Alloc is one expression that may allocate on the heap, with a short
// description of why. The classifier is intentionally syntactic +
// type-based — it does not model the compiler's escape analysis, so it
// over-approximates (a flagged `new` that provably stays on the stack is
// still flagged); hot-path code either avoids the construct or carries a
// //lint:ignore with the amortization argument.
type Alloc struct {
	Pos  token.Pos
	What string
}

// Allocations classifies every potentially-allocating expression in body,
// excluding the bodies of nested function literals (which are separate
// call-graph nodes and classified on their own) — the literal itself is
// still classified as a capturing closure when it closes over variables.
// sig is the enclosing function's signature, used to detect implicit
// interface boxing at return statements; it may be nil.
func Allocations(info *types.Info, body *ast.BlockStmt, sig *types.Signature) []Alloc {
	var out []Alloc
	report := func(pos token.Pos, what string) {
		out = append(out, Alloc{Pos: pos, What: what})
	}

	// Expressions in call-operator or address-of position, so method
	// values and composite literals are not double-counted.
	funPos := make(map[ast.Node]bool)
	addrPos := make(map[ast.Node]bool)
	walkOwn(body, func(x ast.Node) {
		switch x := x.(type) {
		case *ast.CallExpr:
			funPos[ast.Unparen(x.Fun)] = true
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				addrPos[ast.Unparen(x.X)] = true
			}
		}
	})

	walkOwn(body, func(x ast.Node) {
		switch x := x.(type) {
		case *ast.CallExpr:
			classifyCallAllocs(info, x, report)
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					report(x.Pos(), "&composite literal allocates")
				}
			}
		case *ast.CompositeLit:
			if addrPos[x] {
				break
			}
			switch typeOf(info, x).Underlying().(type) {
			case *types.Slice:
				report(x.Pos(), "slice literal allocates")
			case *types.Map:
				report(x.Pos(), "map literal allocates")
			}
		case *ast.FuncLit:
			if captures(info, x) {
				report(x.Pos(), "closure captures variables and allocates")
			}
		case *ast.SelectorExpr:
			if funPos[x] {
				break
			}
			if sel, ok := info.Selections[x]; ok && sel.Kind() == types.MethodVal {
				report(x.Pos(), "method value allocates a bound-method closure")
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isString(typeOf(info, x)) && !isConst(info, x) {
				report(x.Pos(), "string concatenation allocates")
			}
		case *ast.GoStmt:
			report(x.Pos(), "go statement spawns a goroutine")
		case *ast.ReturnStmt:
			classifyReturnBoxing(info, x, sig, report)
		}
	})
	return out
}

// classifyCallAllocs handles the call-shaped allocation classes: the
// make/new/append builtins, explicit conversions (to interface, between
// string and byte/rune slices), implicit interface boxing of arguments,
// and variadic argument slices.
func classifyCallAllocs(info *types.Info, call *ast.CallExpr, report func(token.Pos, string)) {
	// Explicit conversion T(x).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) != 1 {
			return
		}
		dst, src := tv.Type, typeOf(info, call.Args[0])
		switch {
		case boxes(info, call.Args[0], dst):
			report(call.Pos(), "conversion to interface boxes "+relType(src))
		case stringCopyConversion(src, dst):
			slice := dst
			if isString(dst) {
				slice = src
			}
			report(call.Pos(), "conversion between string and "+relType(slice)+" copies")
		}
		return
	}
	// Builtins.
	if id := calleeIdent(call); id != nil {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				report(call.Pos(), "make allocates")
			case "new":
				report(call.Pos(), "new allocates")
			case "append":
				report(call.Pos(), "append may grow its backing array")
			}
			return
		}
	}
	// Implicit boxing at parameters + variadic slice construction.
	sig, ok := typeOf(info, call.Fun).Underlying().(*types.Signature)
	if !ok {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis.IsValid() {
				pt = sig.Params().At(np - 1).Type() // s... passes the slice through
			} else {
				pt = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
			}
		case i < np:
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		if boxes(info, arg, pt) {
			report(arg.Pos(), "argument is boxed into interface "+relType(pt))
		}
	}
	if sig.Variadic() && !call.Ellipsis.IsValid() && len(call.Args) >= np {
		report(call.Lparen, "variadic call allocates its argument slice")
	}
}

// classifyReturnBoxing flags concrete values returned as interface
// results.
func classifyReturnBoxing(info *types.Info, ret *ast.ReturnStmt, sig *types.Signature, report func(token.Pos, string)) {
	if sig == nil || len(ret.Results) != sig.Results().Len() {
		return // naked return or multi-value call passthrough
	}
	for i, res := range ret.Results {
		rt := sig.Results().At(i).Type()
		if boxes(info, res, rt) {
			report(res.Pos(), "return value is boxed into interface "+relType(rt))
		}
	}
}

// boxes reports whether assigning expr to a destination of type dst
// performs an allocating interface conversion: dst is an interface, the
// expression's type is concrete, not pointer-shaped (pointers, channels,
// maps, and funcs fit in the interface word without boxing), and the
// expression is not a constant or nil.
func boxes(info *types.Info, expr ast.Expr, dst types.Type) bool {
	if dst == nil {
		return false
	}
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return false
	}
	tv, ok := info.Types[expr]
	if !ok || tv.Value != nil || tv.IsNil() {
		return false
	}
	src := tv.Type
	if src == nil {
		return false
	}
	if _, ok := src.Underlying().(*types.Interface); ok {
		return false
	}
	return !pointerShaped(src)
}

// pointerShaped reports whether values of t fit directly in an interface
// data word.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// stringCopyConversion reports whether a src→dst conversion copies its
// data: string↔[]byte, string↔[]rune.
func stringCopyConversion(src, dst types.Type) bool {
	return (isString(src) && isByteOrRuneSlice(dst)) || (isByteOrRuneSlice(src) && isString(dst))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func isConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	return types.Typ[types.Invalid]
}

// relType renders a type without package paths for diagnostics.
func relType(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

// captures reports whether the function literal references a variable
// declared outside itself (other than package-level variables, which need
// no closure cell).
func captures(info *types.Info, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(x ast.Node) bool {
		if found {
			return false
		}
		id, ok := x.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		parent := v.Parent()
		if parent == nil || parent == types.Universe || parent.Parent() == types.Universe {
			return true // field selector or package-level variable
		}
		if v.Pos() < lit.Pos() || v.Pos() >= lit.End() {
			found = true
		}
		return true
	})
	return found
}

// calleeIdent returns the identifier in call-operator position, if any.
func calleeIdent(call *ast.CallExpr) *ast.Ident {
	id, _ := ast.Unparen(call.Fun).(*ast.Ident)
	return id
}

// walkOwn visits every node in body except the contents of nested
// function literals (the literals themselves are visited).
func walkOwn(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(x ast.Node) bool {
		if x == nil {
			return false
		}
		visit(x)
		_, isLit := x.(*ast.FuncLit)
		return !isLit
	})
}
