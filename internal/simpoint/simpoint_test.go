package simpoint

import (
	"math"
	"testing"

	"leakbound/internal/workload"
)

func TestBBVCollectorValidation(t *testing.T) {
	if _, err := NewBBVCollector(0, 6); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := NewBBVCollector(100, 25); err == nil {
		t.Error("absurd shift accepted")
	}
}

func TestBBVWindows(t *testing.T) {
	c, err := NewBBVCollector(4, 6)
	if err != nil {
		t.Fatal(err)
	}
	// 8 instructions: 4 in region 0 (PC < 64), 4 in region 1.
	for i := 0; i < 4; i++ {
		c.Add(workload.Instr{PC: uint64(i) * 4})
	}
	for i := 0; i < 4; i++ {
		c.Add(workload.Instr{PC: 64 + uint64(i)*4})
	}
	ws := c.Windows()
	if len(ws) != 2 {
		t.Fatalf("windows = %d, want 2", len(ws))
	}
	if ws[0][0] != 1.0 {
		t.Errorf("window 0 region 0 share = %g, want 1", ws[0][0])
	}
	if ws[1][1] != 1.0 {
		t.Errorf("window 1 region 1 share = %g, want 1", ws[1][1])
	}
}

func TestBBVPartialWindow(t *testing.T) {
	c, _ := NewBBVCollector(10, 6)
	for i := 0; i < 7; i++ { // 7 >= 10/2: partial window kept
		c.Add(workload.Instr{PC: uint64(i) * 4})
	}
	if len(c.Windows()) != 1 {
		t.Errorf("partial window >= half size not kept")
	}
	c2, _ := NewBBVCollector(10, 6)
	for i := 0; i < 3; i++ { // 3 < 5: dropped
		c2.Add(workload.Instr{PC: uint64(i) * 4})
	}
	if len(c2.Windows()) != 0 {
		t.Errorf("tiny partial window kept")
	}
}

func TestBBVNormalized(t *testing.T) {
	c, _ := NewBBVCollector(8, 6)
	for i := 0; i < 8; i++ {
		c.Add(workload.Instr{PC: uint64(i%2) * 64})
	}
	w := c.Windows()[0]
	var sum float64
	for _, v := range w {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("BBV sums to %g", sum)
	}
}

func TestAnalyzeValidation(t *testing.T) {
	if _, err := Analyze(nil, 2, 10); err == nil {
		t.Error("empty windows accepted")
	}
	w := []map[uint32]float64{{0: 1}}
	if _, err := Analyze(w, 0, 10); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Analyze(w, 1, 0); err == nil {
		t.Error("maxIter=0 accepted")
	}
}

func TestAnalyzeTwoObviousPhases(t *testing.T) {
	// 10 windows in region A, 5 in region B: two clean phases with weights
	// 2/3 and 1/3.
	var windows []map[uint32]float64
	for i := 0; i < 10; i++ {
		windows = append(windows, map[uint32]float64{1: 1})
	}
	for i := 0; i < 5; i++ {
		windows = append(windows, map[uint32]float64{99: 1})
	}
	res, err := Analyze(windows, 2, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 2 {
		t.Fatalf("phases = %d, want 2", len(res.Phases))
	}
	if math.Abs(res.Phases[0].Weight-2.0/3) > 1e-9 {
		t.Errorf("phase 0 weight = %g, want 2/3", res.Phases[0].Weight)
	}
	if res.Phases[0].Size != 10 || res.Phases[1].Size != 5 {
		t.Errorf("sizes = %d/%d", res.Phases[0].Size, res.Phases[1].Size)
	}
	// Representative of the big phase must be an A-window.
	rep := res.Phases[0].Representative
	if _, ok := windows[rep][1]; !ok {
		t.Errorf("representative %d not in phase A", rep)
	}
	// Assignment must be consistent: all A-windows in phase 0.
	for i := 0; i < 10; i++ {
		if res.Assignment[i] != 0 {
			t.Errorf("window %d assigned to %d", i, res.Assignment[i])
		}
	}
	// Weights sum to 1.
	var sum float64
	for _, p := range res.Phases {
		sum += p.Weight
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum to %g", sum)
	}
}

func TestAnalyzeKLargerThanWindows(t *testing.T) {
	windows := []map[uint32]float64{{1: 1}, {2: 1}}
	res, err := Analyze(windows, 10, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) > 2 {
		t.Errorf("more phases (%d) than windows", len(res.Phases))
	}
}

func TestDistSymmetric(t *testing.T) {
	a := toVec(map[uint32]float64{1: 0.5, 2: 0.5})
	b := toVec(map[uint32]float64{2: 0.5, 3: 0.5})
	if d1, d2 := dist(a, b), dist(b, a); math.Abs(d1-d2) > 1e-12 {
		t.Errorf("asymmetric distance: %g vs %g", d1, d2)
	}
	if dist(a, a) != 0 {
		t.Error("self distance not 0")
	}
	// Disjoint supports: distance is the sum of both squared norms.
	c := toVec(map[uint32]float64{9: 1})
	if got := dist(a, c); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("disjoint distance = %g, want 1.5", got)
	}
}

func TestPickSimPointsOnBenchmarks(t *testing.T) {
	// Phase-structured benchmarks must yield more than one phase; the
	// weights must sum to 1.
	for _, name := range []string{"gcc", "mesa"} {
		w := workload.MustNew(name, 0.05)
		res, err := PickSimPoints(w, 50000, 6)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Phases) < 2 {
			t.Errorf("%s: only %d phase(s) found", name, len(res.Phases))
		}
		var sum float64
		for _, p := range res.Phases {
			sum += p.Weight
			if p.Representative < 0 || p.Representative >= len(res.Assignment) {
				t.Errorf("%s: representative %d out of range", name, p.Representative)
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s: weights sum to %g", name, sum)
		}
	}
}

func TestAnalyzeDeterministic(t *testing.T) {
	w := workload.MustNew("vortex", 0.02)
	r1, err := PickSimPoints(w, 20000, 4)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := PickSimPoints(workload.MustNew("vortex", 0.02), 20000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Phases) != len(r2.Phases) {
		t.Fatal("non-deterministic phase count")
	}
	for i := range r1.Phases {
		if r1.Phases[i] != r2.Phases[i] {
			t.Fatalf("phase %d differs: %+v vs %+v", i, r1.Phases[i], r2.Phases[i])
		}
	}
}

func BenchmarkAnalyze(b *testing.B) {
	w := workload.MustNew("gcc", 0.05)
	col, _ := NewBBVCollector(50000, 6)
	w.Emit(func(in workload.Instr) bool { col.Add(in); return true })
	windows := col.Windows()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Analyze(windows, 6, 50); err != nil {
			b.Fatal(err)
		}
	}
}
