// Package simpoint implements a small-scale version of the SimPoint
// methodology the paper uses to pick representative simulation windows
// (Sherwood et al., ASPLOS 2002): programs are sliced into fixed-size
// instruction windows, each window is summarized by its basic-block vector
// (BBV — how often each static code region executed), vectors are projected
// and clustered with k-means, and the window closest to each cluster
// centroid becomes that phase's simulation point, weighted by cluster size.
//
// The synthetic workloads here are small enough to simulate in full, so the
// experiment harness runs complete traces; this package exists because the
// methodology is part of the paper's toolchain, and the phase weights it
// produces are used by tests to confirm the generators really do have
// phase behaviour.
package simpoint

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"leakbound/internal/workload"
)

// BBVCollector slices an instruction stream into windows of WindowSize
// instructions and builds one basic-block vector per window. Basic blocks
// are approximated by code regions: PC >> RegionShift.
type BBVCollector struct {
	WindowSize  int
	RegionShift uint

	current map[uint32]float64
	filled  int
	windows []map[uint32]float64
}

// NewBBVCollector creates a collector; windowSize must be positive.
// regionShift of 6 groups PCs by 64-byte line, a reasonable basic-block
// proxy for fixed-width ISAs.
func NewBBVCollector(windowSize int, regionShift uint) (*BBVCollector, error) {
	if windowSize <= 0 {
		return nil, fmt.Errorf("simpoint: non-positive window size %d", windowSize)
	}
	if regionShift > 20 {
		return nil, fmt.Errorf("simpoint: implausible region shift %d", regionShift)
	}
	return &BBVCollector{
		WindowSize:  windowSize,
		RegionShift: regionShift,
		current:     make(map[uint32]float64),
	}, nil
}

// Add consumes one instruction.
func (c *BBVCollector) Add(in workload.Instr) {
	c.current[uint32(in.PC>>c.RegionShift)]++
	c.filled++
	if c.filled >= c.WindowSize {
		c.windows = append(c.windows, c.current)
		c.current = make(map[uint32]float64)
		c.filled = 0
	}
}

// Windows returns the completed windows' normalized BBVs (each vector sums
// to 1). A final partial window is included if it covers at least half the
// window size.
func (c *BBVCollector) Windows() []map[uint32]float64 {
	out := make([]map[uint32]float64, 0, len(c.windows)+1)
	out = append(out, c.windows...)
	if c.filled >= c.WindowSize/2 && len(c.current) > 0 {
		out = append(out, c.current)
	}
	norm := make([]map[uint32]float64, len(out))
	for i, w := range out {
		var total float64
		for _, v := range w {
			total += v
		}
		n := make(map[uint32]float64, len(w))
		for k, v := range w {
			n[k] = v / total
		}
		norm[i] = n
	}
	return norm
}

// Phase is one discovered program phase.
type Phase struct {
	// Representative is the index of the window chosen as this phase's
	// simulation point.
	Representative int
	// Weight is the fraction of all windows belonging to this phase.
	Weight float64
	// Size is the number of member windows.
	Size int
}

// Result is the output of phase analysis.
type Result struct {
	Phases     []Phase
	Assignment []int // window index -> phase index
}

// vec is a sparse vector in deterministic (key-sorted) form. All distance
// and centroid arithmetic runs over sorted slices so results are exactly
// reproducible — map iteration order must never influence clustering.
type vec struct {
	keys []uint32
	vals []float64
}

// toVec converts a map BBV into sorted form.
func toVec(m map[uint32]float64) vec {
	keys := make([]uint32, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	vals := make([]float64, len(keys))
	for i, k := range keys {
		vals[i] = m[k]
	}
	return vec{keys: keys, vals: vals}
}

// dist returns the squared Euclidean distance between two sorted vectors,
// accumulated in key order.
func dist(a, b vec) float64 {
	var d float64
	i, j := 0, 0
	for i < len(a.keys) && j < len(b.keys) {
		switch {
		case a.keys[i] == b.keys[j]:
			diff := a.vals[i] - b.vals[j]
			d += diff * diff
			i++
			j++
		case a.keys[i] < b.keys[j]:
			d += a.vals[i] * a.vals[i]
			i++
		default:
			d += b.vals[j] * b.vals[j]
			j++
		}
	}
	for ; i < len(a.keys); i++ {
		d += a.vals[i] * a.vals[i]
	}
	for ; j < len(b.keys); j++ {
		d += b.vals[j] * b.vals[j]
	}
	return d
}

// centroid averages member vectors, again in deterministic key order.
func centroid(members []vec) vec {
	sum := make(map[uint32]float64)
	for _, m := range members {
		for i, k := range m.keys {
			sum[k] += m.vals[i]
		}
	}
	out := toVec(sum)
	n := float64(len(members))
	for i := range out.vals {
		out.vals[i] /= n
	}
	return out
}

// kmeansSeed deterministically picks k initial centroids spread across the
// run (evenly spaced windows), which is stable and good enough for phase
// detection.
func kmeansSeed(windows []vec, k int) []vec {
	cents := make([]vec, k)
	for i := 0; i < k; i++ {
		src := windows[i*len(windows)/k]
		cents[i] = vec{keys: append([]uint32(nil), src.keys...), vals: append([]float64(nil), src.vals...)}
	}
	return cents
}

// Analyze clusters the windows into at most k phases with k-means (at most
// maxIter iterations) and returns the phases sorted by descending weight.
func Analyze(rawWindows []map[uint32]float64, k, maxIter int) (Result, error) {
	if len(rawWindows) == 0 {
		return Result{}, errors.New("simpoint: no windows")
	}
	if k <= 0 {
		return Result{}, fmt.Errorf("simpoint: non-positive k %d", k)
	}
	if maxIter <= 0 {
		return Result{}, fmt.Errorf("simpoint: non-positive maxIter %d", maxIter)
	}
	if k > len(rawWindows) {
		k = len(rawWindows)
	}
	windows := make([]vec, len(rawWindows))
	for i, w := range rawWindows {
		windows[i] = toVec(w)
	}
	cents := kmeansSeed(windows, k)
	assign := make([]int, len(windows))
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, w := range windows {
			best, bestD := 0, math.Inf(1)
			for c, cent := range cents {
				if d := dist(w, cent); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Recompute centroids from members.
		groups := make([][]vec, k)
		for i, w := range windows {
			groups[assign[i]] = append(groups[assign[i]], w)
		}
		for c := range cents {
			if len(groups[c]) == 0 {
				continue // empty cluster keeps its centroid
			}
			cents[c] = centroid(groups[c])
		}
	}

	// Build phases: pick the member window closest to each centroid
	// (earliest index wins ties, deterministically).
	type acc struct {
		size int
		rep  int
		repD float64
	}
	accs := make([]acc, k)
	for i := range accs {
		accs[i].repD = math.Inf(1)
		accs[i].rep = -1
	}
	for i, w := range windows {
		c := assign[i]
		accs[c].size++
		if d := dist(w, cents[c]); d < accs[c].repD {
			accs[c].repD = d
			accs[c].rep = i
		}
	}
	var phases []Phase
	remap := make([]int, k)
	for c, a := range accs {
		remap[c] = -1
		if a.size == 0 {
			continue
		}
		remap[c] = len(phases)
		phases = append(phases, Phase{
			Representative: a.rep,
			Weight:         float64(a.size) / float64(len(windows)),
			Size:           a.size,
		})
	}
	// Sort phases by weight (descending), keeping the assignment consistent.
	order := make([]int, len(phases))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool { return phases[order[i]].Weight > phases[order[j]].Weight })
	sorted := make([]Phase, len(phases))
	inv := make([]int, len(phases))
	for newIdx, oldIdx := range order {
		sorted[newIdx] = phases[oldIdx]
		inv[oldIdx] = newIdx
	}
	finalAssign := make([]int, len(assign))
	for i, c := range assign {
		finalAssign[i] = inv[remap[c]]
	}
	return Result{Phases: sorted, Assignment: finalAssign}, nil
}

// PickSimPoints runs the full pipeline over a workload: collect BBVs with
// the given window size, cluster into k phases, and return the result.
func PickSimPoints(w workload.Workload, windowSize, k int) (Result, error) {
	return PickSimPointsContext(context.Background(), w, windowSize, k)
}

// PickSimPointsContext is PickSimPoints with cooperative cancellation: the
// BBV collection pass polls ctx every few thousand instructions and the
// function returns ctx.Err() once the context is done.
func PickSimPointsContext(ctx context.Context, w workload.Workload, windowSize, k int) (Result, error) {
	col, err := NewBBVCollector(windowSize, 6)
	if err != nil {
		return Result{}, err
	}
	var n uint64
	var ctxErr error
	w.Emit(func(in workload.Instr) bool {
		if n&4095 == 0 {
			if err := ctx.Err(); err != nil {
				ctxErr = err
				return false
			}
		}
		n++
		col.Add(in)
		return true
	})
	if ctxErr != nil {
		return Result{}, ctxErr
	}
	return Analyze(col.Windows(), k, 50)
}
