package prefetch

import (
	"testing"

	"leakbound/internal/interval"
	"leakbound/internal/sim/trace"
)

func dEvent(cycle, lineAddr, pc uint64) trace.Event {
	return trace.Event{Cycle: cycle, LineAddr: lineAddr, PC: pc, Cache: trace.L1D, Kind: trace.Load}
}

func iEvent(cycle, lineAddr uint64) trace.Event {
	return trace.Event{Cycle: cycle, LineAddr: lineAddr, PC: lineAddr << 6, Cache: trace.L1I, Kind: trace.Fetch}
}

func TestConfig(t *testing.T) {
	if !ForICache().NextLine || ForICache().Stride {
		t.Error("I-cache config wrong (paper: next-line only)")
	}
	if !ForDCache().NextLine || !ForDCache().Stride {
		t.Error("D-cache config wrong (paper: next-line + stride)")
	}
	if err := (Config{}).Validate(); err == nil {
		t.Error("empty config accepted")
	}
	if err := (Config{NextLine: true, StrideTableSize: -1}).Validate(); err == nil {
		t.Error("negative table accepted")
	}
	if _, err := NewClassifier(Config{}); err == nil {
		t.Error("NewClassifier accepted empty config")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNewClassifier did not panic")
		}
	}()
	MustNewClassifier(Config{})
}

func TestNextLineDetection(t *testing.T) {
	c := MustNewClassifier(ForICache())
	// Line 100 accessed at cycle 10 (opens its interval), line 99 accessed
	// at cycle 50, line 100 re-accessed at cycle 80: prefetchable.
	c.Observe(iEvent(10, 100))
	c.Observe(iEvent(50, 99))
	flags := c.Classify(iEvent(80, 100), 10)
	if flags&interval.NLPrefetchable == 0 {
		t.Error("next-line access inside interval not detected")
	}
	nl, _ := c.Stats()
	if nl != 1 {
		t.Errorf("nl hits = %d", nl)
	}
}

func TestNextLineOutsideInterval(t *testing.T) {
	c := MustNewClassifier(ForICache())
	// Predecessor accessed BEFORE the interval opened: not prefetchable.
	c.Observe(iEvent(5, 99))
	c.Observe(iEvent(10, 100))
	flags := c.Classify(iEvent(80, 100), 10)
	if flags != 0 {
		t.Errorf("stale predecessor flagged: %v", flags)
	}
	// Predecessor at exactly the closing cycle: too late to prefetch.
	c2 := MustNewClassifier(ForICache())
	c2.Observe(iEvent(10, 200))
	c2.Observe(iEvent(80, 199))
	if c2.Classify(iEvent(80, 200), 10) != 0 {
		t.Error("same-cycle predecessor flagged")
	}
}

func TestNextLineAtLineZero(t *testing.T) {
	c := MustNewClassifier(ForICache())
	c.Observe(iEvent(10, 0))
	// Line 0 has no predecessor; must not underflow.
	if got := c.Classify(iEvent(80, 0), 10); got != 0 {
		t.Errorf("line 0 flagged: %v", got)
	}
}

func TestStrideDetection(t *testing.T) {
	c := MustNewClassifier(ForDCache())
	const pc = 0x400100
	// A load marching by 128 bytes (2 lines): lines 10, 12, 14, 16...
	// After two equal strides the predictor must flag the next.
	c.Observe(dEvent(10, 10, pc))
	c.Observe(dEvent(20, 12, pc)) // stride = 2 lines (first observation)
	c.Observe(dEvent(30, 14, pc)) // stride repeated: confirmed
	// Interval of line 16 opened at cycle 5; closing access at cycle 40 by
	// the same load, predicted by the cycle-30 access (inside interval).
	flags := c.Classify(dEvent(40, 16, pc), 5)
	if flags&interval.StridePrefetchable == 0 {
		t.Error("confirmed stride not detected")
	}
	_, st := c.Stats()
	if st != 1 {
		t.Errorf("stride hits = %d", st)
	}
}

func TestStrideNotConfirmedBySingleRepeat(t *testing.T) {
	c := MustNewClassifier(ForDCache())
	const pc = 0x400100
	c.Observe(dEvent(10, 10, pc))
	c.Observe(dEvent(20, 12, pc)) // one stride observation only
	flags := c.Classify(dEvent(30, 14, pc), 5)
	if flags&interval.StridePrefetchable != 0 {
		t.Error("unconfirmed stride flagged (paper: same stride at least twice)")
	}
}

func TestStrideBrokenPattern(t *testing.T) {
	c := MustNewClassifier(ForDCache())
	const pc = 0x400100
	c.Observe(dEvent(10, 10, pc))
	c.Observe(dEvent(20, 12, pc))
	c.Observe(dEvent(30, 14, pc)) // confirmed, stride 2
	c.Observe(dEvent(40, 99, pc)) // pattern broken
	flags := c.Classify(dEvent(50, 101, pc), 5)
	if flags&interval.StridePrefetchable != 0 {
		t.Error("broken stride still flagged")
	}
}

func TestStrideIgnoresFetches(t *testing.T) {
	c := MustNewClassifier(Config{Stride: true})
	e := iEvent(10, 10)
	c.Observe(e)
	c.Observe(iEvent(20, 12))
	c.Observe(iEvent(30, 14))
	if got := c.Classify(iEvent(40, 16), 5); got != 0 {
		t.Errorf("fetch events drove stride predictor: %v", got)
	}
}

func TestStrideZeroStrideNeverFlags(t *testing.T) {
	c := MustNewClassifier(ForDCache())
	const pc = 0x400200
	for cy := uint64(10); cy <= 50; cy += 10 {
		c.Observe(dEvent(cy, 7, pc))
	}
	if got := c.Classify(dEvent(60, 7, pc), 5); got&interval.StridePrefetchable != 0 {
		t.Error("zero stride flagged (same line repeat is not a stride prefetch)")
	}
}

func TestStrideTableBound(t *testing.T) {
	c := MustNewClassifier(Config{Stride: true, StrideTableSize: 2})
	c.Observe(dEvent(1, 10, 0x1))
	c.Observe(dEvent(2, 20, 0x2))
	c.Observe(dEvent(3, 30, 0x3)) // table full: not tracked
	if c.strides.Len() != 2 {
		t.Errorf("table size = %d, want 2", c.strides.Len())
	}
}

func TestNLPriorityOverStride(t *testing.T) {
	// When both predictors would fire, the interval is counted as NL (the
	// paper's P-NL and P-stride are disjoint shares).
	c := MustNewClassifier(ForDCache())
	const pc = 0x400300
	c.Observe(dEvent(10, 20, pc))
	c.Observe(dEvent(20, 21, pc)) // stride 1 = next line too
	c.Observe(dEvent(30, 22, pc))
	flags := c.Classify(dEvent(40, 23, pc), 25)
	if flags&interval.NLPrefetchable == 0 || flags&interval.StridePrefetchable != 0 {
		t.Errorf("flags = %v, want NL only", flags)
	}
}

func TestEndToEndWithCollector(t *testing.T) {
	// Wire a classifier into a collector and verify flags propagate.
	cl := MustNewClassifier(ForDCache())
	col, err := interval.NewCollector(trace.L1D, 8, cl)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(cycle, line uint64, frame uint32) trace.Event {
		return trace.Event{Cycle: cycle, LineAddr: line, Frame: frame, PC: 0x400000, Cache: trace.L1D, Kind: trace.Load}
	}
	// Frame 0 holds line 100; frame 1 holds line 99.
	col.Add(mk(10, 100, 0))
	col.Add(mk(50, 99, 1))
	col.Add(mk(90, 100, 0)) // closes an 80-cycle interval; NL-prefetchable
	d, err := col.Finish(120)
	if err != nil {
		t.Fatal(err)
	}
	n := d.Count(func(l uint64, f interval.Flags) bool { return f&interval.NLPrefetchable != 0 })
	if n != 1 {
		t.Errorf("NL-flagged intervals = %d, want 1", n)
	}
}

func TestAnalyze(t *testing.T) {
	d := interval.NewDistribution(4, 1000)
	d.Add(3, 0, 10)                             // short
	d.Add(100, interval.NLPrefetchable, 5)      // mid, NL
	d.Add(500, 0, 5)                            // mid, NP
	d.Add(5000, interval.StridePrefetchable, 2) // long, stride
	d.Add(9000, 0, 3)                           // long, NP
	d.Add(1000, interval.Leading, 7)            // edge: excluded
	p := Analyze(d, 6, 1057)
	if p.Total() != 25 {
		t.Errorf("total = %d, want 25 (edges excluded)", p.Total())
	}
	if p.ShortCount != 10 || p.MidCount != 10 || p.LongCount != 5 {
		t.Errorf("regime counts: %d/%d/%d", p.ShortCount, p.MidCount, p.LongCount)
	}
	if p.MidNL != 5 || p.LongStride != 2 {
		t.Errorf("prefetch counts: midNL=%d longStride=%d", p.MidNL, p.LongStride)
	}
	if got := p.NLShare(); got != 0.2 {
		t.Errorf("NLShare = %g, want 0.2", got)
	}
	if got := p.StrideShare(); got != 0.08 {
		t.Errorf("StrideShare = %g, want 0.08", got)
	}
	if got := p.PrefetchableShare(); got != 0.28 {
		t.Errorf("PrefetchableShare = %g", got)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	d := interval.NewDistribution(1, 1)
	p := Analyze(d, 6, 1057)
	if p.NLShare() != 0 || p.StrideShare() != 0 {
		t.Error("empty distribution has non-zero shares")
	}
}

func BenchmarkClassifierObserve(b *testing.B) {
	c := MustNewClassifier(ForDCache())
	for i := 0; i < b.N; i++ {
		c.Observe(dEvent(uint64(i), uint64(i%100000), uint64(i%512)))
	}
}
