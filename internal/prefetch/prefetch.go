// Package prefetch implements the two hardware prefetching schemes the
// paper uses to approximate the oracle's perfect future knowledge
// (Section 5): next-line prefetching and Farkas-style per-static-load
// stride prefetching. Its classifiers plug into internal/interval's
// Collector to flag each access interval as prefetchable or not, which the
// Prefetch-A and Prefetch-B policies in internal/leakage then consume.
//
// An interval of cache line X is next-line prefetchable when line X−1 was
// accessed within the interval — the access to X−1 would have triggered a
// prefetch of X in time to hide the wakeup. An interval is stride
// prefetchable when the static load that closes it had already established
// a constant stride (the same stride seen at least twice) predicting
// exactly this address, and the predicting access fell within the interval.
package prefetch

import (
	"fmt"

	"leakbound/internal/interval"
	"leakbound/internal/sim/trace"
	"leakbound/internal/u64map"
)

// Config selects which predictors a classifier runs. The paper uses
// next-line only for the instruction cache, and next-line plus stride for
// the data cache (Section 5.1).
type Config struct {
	NextLine bool
	Stride   bool
	// StrideTableSize bounds the per-PC stride table (entries); 0 means
	// unbounded (oracle-sized, the paper's limit-study setting).
	StrideTableSize int
}

// ForICache returns the paper's instruction-cache configuration.
func ForICache() Config { return Config{NextLine: true} }

// ForDCache returns the paper's data-cache configuration.
func ForDCache() Config { return Config{NextLine: true, Stride: true} }

// Validate checks the configuration.
func (c Config) Validate() error {
	if !c.NextLine && !c.Stride {
		return fmt.Errorf("prefetch: no predictor enabled")
	}
	if c.StrideTableSize < 0 {
		return fmt.Errorf("prefetch: negative stride table size %d", c.StrideTableSize)
	}
	return nil
}

// strideEntry tracks one static load's access pattern.
type strideEntry struct {
	lastAddr  uint64
	lastCycle uint64
	stride    int64
	confirmed bool // the same stride has been seen at least twice
}

// Classifier implements interval.Classifier (and the fused
// interval.StreamClassifier fast path) for one cache's event stream. Its
// predictor tables are flat open-addressed u64map tables: the per-event
// lookup cost is what dominated Suite profiles when these were Go maps.
type Classifier struct {
	cfg Config

	// lastLineAccess maps block-aligned line address -> cycle of the most
	// recent access + 1 (0 = never seen). Used by next-line detection.
	// Paged storage: line addresses have strong spatial locality, so the
	// one-page memo turns most updates into an array store.
	lastLineAccess u64map.Pages

	// strides maps static load PC -> its stride predictor state.
	strides u64map.Map[strideEntry]

	// predLine is the line the stride predictor would prefetch after the
	// most recent observation, encoded +1 (0 = no confirmed prediction).
	// An Engine sharing this classifier's table (Engine.ShareStrides)
	// reads it instead of probing a duplicate table of its own.
	predLine uint64

	// Counters for Figure 9's prefetchability accounting.
	nlHits     uint64
	strideHits uint64
}

var (
	_ interval.Classifier       = (*Classifier)(nil)
	_ interval.StreamClassifier = (*Classifier)(nil)
)

// NewClassifier builds a classifier with the given predictor configuration.
func NewClassifier(cfg Config) (*Classifier, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Classifier{cfg: cfg}, nil
}

// MustNewClassifier is NewClassifier that panics on bad configuration.
func MustNewClassifier(cfg Config) *Classifier {
	c, err := NewClassifier(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Classify implements interval.Classifier: called at the access that closes
// an interval opened at cycle start, before Observe sees the event.
func (c *Classifier) Classify(e trace.Event, start uint64) interval.Flags {
	return c.classify(e.Cycle, e.LineAddr, e.PC, e.Kind, start)
}

func (c *Classifier) classify(cycle, lineAddr, pc uint64, kind trace.Kind, start uint64) interval.Flags {
	var flags interval.Flags
	if c.cfg.NextLine && lineAddr > 0 {
		if lp := c.lastLineAccess.Lookup(lineAddr - 1); lp != nil && *lp > 0 {
			// *lp is cycle+1; the predecessor access must fall strictly
			// inside the open interval (after start, before cycle).
			if lastCycle := *lp - 1; lastCycle > start && lastCycle < cycle {
				flags |= interval.NLPrefetchable
				c.nlHits++
			}
		}
	}
	// Stride prefetch: only data accesses carry a meaningful static load.
	if c.cfg.Stride && flags&interval.NLPrefetchable == 0 && kind != trace.Fetch {
		if s := c.strides.Ptr(pc); s != nil && s.confirmed {
			predicted := s.lastAddr + uint64(s.stride)
			if s.stride != 0 && predicted>>6 == lineAddr &&
				s.lastCycle > start && s.lastCycle < cycle {
				flags |= interval.StridePrefetchable
				c.strideHits++
			}
		}
	}
	return flags
}

// Observe implements interval.Classifier: updates predictor state for every
// access in stream order.
func (c *Classifier) Observe(e trace.Event) {
	c.observe(e.Cycle, e.LineAddr, e.PC, e.Kind)
}

func (c *Classifier) observe(cycle, lineAddr, pc uint64, kind trace.Kind) {
	if c.cfg.NextLine {
		*c.lastLineAccess.Slot(lineAddr) = cycle + 1
	}
	c.predLine = 0
	if c.cfg.Stride && kind != trace.Fetch {
		addr := lineAddr << 6 // classify at line granularity
		s := c.strides.Ptr(pc)
		if s == nil {
			if c.cfg.StrideTableSize > 0 && c.strides.Len() >= c.cfg.StrideTableSize {
				// Table full: evict nothing, simply don't track new PCs.
				// A limit study uses an unbounded table; the bound exists
				// for sensitivity experiments.
				return
			}
			c.strides.Set(pc, strideEntry{lastAddr: addr, lastCycle: cycle})
			return
		}
		stride := int64(addr) - int64(s.lastAddr)
		if stride == s.stride && stride != 0 {
			s.confirmed = true
		} else {
			s.stride = stride
			s.confirmed = false
		}
		s.lastAddr = addr
		s.lastCycle = cycle
		if s.confirmed {
			c.predLine = uint64(int64(addr)+s.stride)>>6 + 1
		}
	}
}

// ClassifyObserve implements interval.StreamClassifier: one fused call per
// access on the streaming path, equivalent to Classify (when closing)
// followed by Observe but with a single stride-table probe — both halves
// touch the same PC entry, and classification reads its state before the
// observation updates it, so sharing the pointer preserves the
// Classify-then-Observe contract exactly.
//
//lint:hotpath
func (c *Classifier) ClassifyObserve(cycle, lineAddr, pc uint64, kind trace.Kind, start uint64, closing bool) interval.Flags {
	var flags interval.Flags
	if c.cfg.NextLine {
		if closing && lineAddr > 0 {
			if lp := c.lastLineAccess.Lookup(lineAddr - 1); lp != nil && *lp > 0 {
				if lastCycle := *lp - 1; lastCycle > start && lastCycle < cycle {
					flags |= interval.NLPrefetchable
					c.nlHits++
				}
			}
		}
		*c.lastLineAccess.Slot(lineAddr) = cycle + 1
	}
	c.predLine = 0
	if c.cfg.Stride && kind != trace.Fetch {
		addr := lineAddr << 6
		s := c.strides.Ptr(pc)
		if s == nil {
			if c.cfg.StrideTableSize == 0 || c.strides.Len() < c.cfg.StrideTableSize {
				c.strides.Set(pc, strideEntry{lastAddr: addr, lastCycle: cycle})
			}
			return flags
		}
		if closing && flags&interval.NLPrefetchable == 0 && s.confirmed {
			predicted := s.lastAddr + uint64(s.stride)
			if s.stride != 0 && predicted>>6 == lineAddr &&
				s.lastCycle > start && s.lastCycle < cycle {
				flags |= interval.StridePrefetchable
				c.strideHits++
			}
		}
		stride := int64(addr) - int64(s.lastAddr)
		if stride == s.stride && stride != 0 {
			s.confirmed = true
		} else {
			s.stride = stride
			s.confirmed = false
		}
		s.lastAddr = addr
		s.lastCycle = cycle
		if s.confirmed {
			c.predLine = uint64(int64(addr)+s.stride)>>6 + 1
		}
	}
	return flags
}

// Stats reports how many interval closings each predictor flagged.
func (c *Classifier) Stats() (nextLine, stride uint64) {
	return c.nlHits, c.strideHits
}

// Prefetchability summarizes Figure 9: how interval counts split across the
// three length regimes and, within each, the prefetchable share.
type Prefetchability struct {
	// Boundaries used for the split (a and b; 6 and 1057 at 70nm).
	A, B float64
	// Counts of interior intervals per regime.
	ShortCount, MidCount, LongCount uint64
	// Prefetchable counts within the mid and long regimes, split by
	// predictor. Short intervals are always non-prefetchable by definition
	// (they are never put in a low-power mode, so there is nothing to
	// prefetch; Section 5.2).
	MidNL, MidStride   uint64
	LongNL, LongStride uint64
}

// Total returns the total interior interval count.
func (p Prefetchability) Total() uint64 {
	return p.ShortCount + p.MidCount + p.LongCount
}

// NLShare returns the fraction of all intervals flagged next-line
// prefetchable (the paper's P-NL).
func (p Prefetchability) NLShare() float64 {
	t := p.Total()
	if t == 0 {
		return 0
	}
	return float64(p.MidNL+p.LongNL) / float64(t)
}

// StrideShare returns the fraction flagged stride prefetchable (P-stride).
func (p Prefetchability) StrideShare() float64 {
	t := p.Total()
	if t == 0 {
		return 0
	}
	return float64(p.MidStride+p.LongStride) / float64(t)
}

// PrefetchableShare returns the total prefetchable fraction.
func (p Prefetchability) PrefetchableShare() float64 {
	return p.NLShare() + p.StrideShare()
}

// Analyze computes Figure 9's breakdown from a flagged distribution and the
// two inflection points.
func Analyze(d *interval.Distribution, a, b float64) Prefetchability {
	out := Prefetchability{A: a, B: b}
	d.Each(func(length uint64, flags interval.Flags, count uint64) bool {
		if !flags.Interior() {
			return true
		}
		L := float64(length)
		switch {
		case L <= a:
			out.ShortCount += count
		case L <= b:
			out.MidCount += count
			if flags&interval.NLPrefetchable != 0 {
				out.MidNL += count
			} else if flags&interval.StridePrefetchable != 0 {
				out.MidStride += count
			}
		default:
			out.LongCount += count
			if flags&interval.NLPrefetchable != 0 {
				out.LongNL += count
			} else if flags&interval.StridePrefetchable != 0 {
				out.LongStride += count
			}
		}
		return true
	})
	return out
}
