package prefetch

import (
	"testing"
)

func engCfg() EngineConfig { return DefaultEngineConfig(ForDCache()) }

func TestEngineConfigValidate(t *testing.T) {
	good := engCfg()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Lookahead = 0
	if bad.Validate() == nil {
		t.Error("zero lookahead accepted")
	}
	bad = good
	bad.Degree = 0
	if bad.Validate() == nil {
		t.Error("zero degree accepted")
	}
	bad = good
	bad.Degree = 100
	if bad.Validate() == nil {
		t.Error("absurd degree accepted")
	}
	bad = good
	bad.NextLine, bad.Stride = false, false
	if bad.Validate() == nil {
		t.Error("no predictors accepted")
	}
	if _, err := NewEngine(bad); err == nil {
		t.Error("NewEngine accepted bad config")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNewEngine did not panic")
		}
	}()
	MustNewEngine(bad)
}

func TestEngineNextLineUseful(t *testing.T) {
	e := MustNewEngine(engCfg())
	// Access line 10 at cycle 0 -> prefetch line 11; demand line 11 at
	// cycle 100 (miss): useful, covered.
	e.Access(dEvent(0, 10, 0x1))
	ev := dEvent(100, 11, 0x1)
	ev.Miss = true
	e.Access(ev)
	st := e.Finish()
	if st.Useful != 1 {
		t.Errorf("useful = %d, want 1", st.Useful)
	}
	if st.CoveredMisses != 1 || st.DemandMisses != 1 {
		t.Errorf("coverage stats: %+v", st)
	}
	if st.Coverage() != 1 {
		t.Errorf("coverage = %g", st.Coverage())
	}
}

func TestEngineLatePrefetch(t *testing.T) {
	e := MustNewEngine(engCfg())
	e.Access(dEvent(0, 10, 0x1))
	// Demand arrives 3 cycles later: under MinLatency 7 -> late.
	e.Access(dEvent(3, 11, 0x1))
	st := e.Finish()
	if st.Late != 1 || st.Useful != 0 {
		t.Errorf("late prefetch accounting: %+v", st)
	}
}

func TestEngineUselessAgesOut(t *testing.T) {
	cfg := engCfg()
	cfg.Lookahead = 100
	e := MustNewEngine(cfg)
	e.Access(dEvent(0, 10, 0x1))
	// Far-future access to an unrelated line triggers the sweep.
	e.Access(dEvent(1000, 500, 0x2))
	st := e.Finish()
	if st.Useless < 1 {
		t.Errorf("aged-out prefetch not counted useless: %+v", st)
	}
	if st.Accuracy() != 0 {
		t.Errorf("accuracy = %g, want 0", st.Accuracy())
	}
}

func TestEngineStridePrediction(t *testing.T) {
	cfg := DefaultEngineConfig(Config{Stride: true})
	e := MustNewEngine(cfg)
	const pc = 0x400100
	// Lines 10, 14, 18 (stride 4): after confirmation the engine must
	// prefetch line 22.
	e.Access(dEvent(0, 10, pc))
	e.Access(dEvent(50, 14, pc))
	n := e.Access(dEvent(100, 18, pc)) // stride confirmed here
	if n != 1 {
		t.Fatalf("issued %d prefetches on confirmation, want 1", n)
	}
	ev := dEvent(200, 22, pc)
	ev.Miss = true
	e.Access(ev)
	st := e.Finish()
	if st.Useful != 1 || st.CoveredMisses != 1 {
		t.Errorf("stride prefetch accounting: %+v", st)
	}
}

func TestEngineDegree(t *testing.T) {
	cfg := DefaultEngineConfig(Config{NextLine: true})
	cfg.Degree = 3
	e := MustNewEngine(cfg)
	n := e.Access(dEvent(0, 10, 0x1))
	if n != 3 {
		t.Errorf("degree-3 issued %d, want 3", n)
	}
	// Duplicate issues are suppressed.
	n = e.Access(dEvent(1, 10, 0x1))
	if n != 0 {
		t.Errorf("duplicate issue not suppressed: %d", n)
	}
}

func TestEngineStatsConservation(t *testing.T) {
	e := MustNewEngine(engCfg())
	for i := uint64(0); i < 1000; i++ {
		ev := dEvent(i*10, i%64, 0x1)
		ev.Miss = i%7 == 0
		e.Access(ev)
	}
	st := e.Finish()
	if st.Issued != st.Useful+st.Late+st.Useless {
		t.Errorf("issued %d != useful %d + late %d + useless %d",
			st.Issued, st.Useful, st.Late, st.Useless)
	}
	if st.DemandAccesses != 1000 {
		t.Errorf("demand accesses = %d", st.DemandAccesses)
	}
	if st.CoveredMisses > st.DemandMisses {
		t.Error("covered more misses than occurred")
	}
	acc := st.Accuracy()
	cov := st.Coverage()
	if acc < 0 || acc > 1 || cov < 0 || cov > 1 {
		t.Errorf("rates out of range: accuracy %g coverage %g", acc, cov)
	}
}

func TestEngineEmptyStats(t *testing.T) {
	var st EngineStats
	if st.Accuracy() != 0 || st.Coverage() != 0 {
		t.Error("empty stats rates not 0")
	}
}

func BenchmarkEngineAccess(b *testing.B) {
	e := MustNewEngine(engCfg())
	for i := 0; i < b.N; i++ {
		e.Access(dEvent(uint64(i), uint64(i%100000), uint64(i%256)))
	}
}
