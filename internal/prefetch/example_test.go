package prefetch_test

import (
	"fmt"

	"leakbound/internal/prefetch"
	"leakbound/internal/sim/trace"
)

// The hardware stride prefetcher locks onto a constant-stride load after
// two confirmations and predicts the next line — the implementable
// approximation of the paper's oracle (Section 5).
func ExampleEngine() {
	eng, err := prefetch.NewEngine(prefetch.DefaultEngineConfig(prefetch.Config{Stride: true}))
	if err != nil {
		panic(err)
	}
	const pc = 0x400100
	ld := func(cycle, line uint64, miss bool) trace.Event {
		return trace.Event{Cycle: cycle, LineAddr: line, PC: pc, Cache: trace.L1D, Kind: trace.Load, Miss: miss}
	}
	eng.Access(ld(0, 100, true))
	eng.Access(ld(50, 104, true))  // stride 4 observed
	eng.Access(ld(100, 108, true)) // stride confirmed -> prefetch 112
	eng.Access(ld(200, 112, true)) // the prefetch covers this miss (and issues 116)
	st := eng.Finish()
	fmt.Printf("issued %d, useful %d, coverage %.0f%%\n",
		st.Issued, st.Useful, 100*st.Coverage())
	// Output:
	// issued 2, useful 1, coverage 25%
}
