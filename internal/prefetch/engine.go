package prefetch

// Engine is an implementable hardware prefetcher — next-line plus per-PC
// stride — as opposed to the oracle-side interval Classifier. It watches
// the demand access stream, issues prefetch requests, and accounts for
// their usefulness, which is what lets the library check the premise of
// Section 5 ("most of the cache misses can be captured by these schemes",
// citing Sair, Sherwood and Calder): the coverage and accuracy of the
// predictors on each workload.
//
// The engine is evaluated against the trace rather than mutating the
// simulated cache: a prefetch is *useful* if the predicted line is
// demanded within Lookahead cycles of being issued, *late* if the demand
// arrives before the prefetch could have completed, and *useless* if no
// demand arrives before the entry ages out.

import (
	"fmt"

	"leakbound/internal/sim/trace"
	"leakbound/internal/telemetry"
)

// EngineConfig controls the prefetch engine.
type EngineConfig struct {
	Config
	// Lookahead is the window (cycles) within which a prefetched line must
	// be demanded to count as useful; beyond it the prefetch is useless
	// (pollution). A few times the L2 latency is customary.
	Lookahead uint64
	// MinLatency is the earliest a prefetch can complete after issue
	// (the L2 hit latency); a demand arriving sooner makes the prefetch
	// late — it helps, but cannot fully hide the miss.
	MinLatency uint64
	// Degree is how many consecutive next lines one access may trigger
	// (degree-1 is classic next-line).
	Degree int
}

// DefaultEngineConfig returns a degree-1 engine with an L2-scaled window
// for the given predictor set.
func DefaultEngineConfig(cfg Config) EngineConfig {
	return EngineConfig{Config: cfg, Lookahead: 10000, MinLatency: 7, Degree: 1}
}

// Validate checks the configuration.
func (c EngineConfig) Validate() error {
	if err := c.Config.Validate(); err != nil {
		return err
	}
	if c.Lookahead == 0 {
		return fmt.Errorf("prefetch: zero lookahead")
	}
	if c.Degree <= 0 || c.Degree > 8 {
		return fmt.Errorf("prefetch: implausible degree %d", c.Degree)
	}
	return nil
}

// EngineStats summarizes the engine's behaviour over a trace.
type EngineStats struct {
	DemandAccesses uint64
	DemandMisses   uint64
	Issued         uint64 // prefetches issued
	Useful         uint64 // demanded within (MinLatency, Lookahead]
	Late           uint64 // demanded within [0, MinLatency]
	Useless        uint64 // aged out without a demand
	CoveredMisses  uint64 // demand misses whose line had a timely prefetch in flight
}

// Accuracy returns Useful / Issued.
func (s EngineStats) Accuracy() float64 {
	if s.Issued == 0 {
		return 0
	}
	return float64(s.Useful) / float64(s.Issued)
}

// Coverage returns the fraction of demand misses a timely prefetch covered.
func (s EngineStats) Coverage() float64 {
	if s.DemandMisses == 0 {
		return 0
	}
	return float64(s.CoveredMisses) / float64(s.DemandMisses)
}

// inflight tracks one outstanding prefetch.
type inflight struct {
	issuedAt uint64
}

// Engine is the prefetcher; feed it the demand access stream of one cache
// in cycle order via Access, then read Stats.
type Engine struct {
	cfg      EngineConfig
	inflight map[uint64]inflight // lineAddr -> issue record
	strides  map[uint64]*strideEntry
	lastLine uint64
	haveLast bool
	stats    EngineStats
	lastSeen uint64
}

// NewEngine builds an engine.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Engine{
		cfg:      cfg,
		inflight: make(map[uint64]inflight),
		strides:  make(map[uint64]*strideEntry),
	}, nil
}

// MustNewEngine panics on bad configuration.
func MustNewEngine(cfg EngineConfig) *Engine {
	e, err := NewEngine(cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// Access feeds one demand access. Returns the number of prefetches issued
// in response (useful mainly for tests).
func (e *Engine) Access(ev trace.Event) int {
	e.stats.DemandAccesses++
	e.expire(ev.Cycle)

	// Demand lookup against in-flight prefetches.
	if rec, ok := e.inflight[ev.LineAddr]; ok {
		age := ev.Cycle - rec.issuedAt
		if age > e.cfg.MinLatency {
			e.stats.Useful++
			if ev.Miss {
				// The simulator's cache did not have the prefetch, but a
				// prefetching cache would have: count the miss as covered.
				e.stats.CoveredMisses++
			}
		} else {
			e.stats.Late++
		}
		delete(e.inflight, ev.LineAddr)
	}
	if ev.Miss {
		e.stats.DemandMisses++
	}

	issued := 0
	// Next-line prediction.
	if e.cfg.NextLine {
		for d := 1; d <= e.cfg.Degree; d++ {
			issued += e.issue(ev.LineAddr+uint64(d), ev.Cycle)
		}
	}
	// Stride prediction (data accesses only).
	if e.cfg.Stride && ev.Kind != trace.Fetch {
		addr := ev.LineAddr << 6
		s, ok := e.strides[ev.PC]
		if !ok {
			if e.cfg.StrideTableSize == 0 || len(e.strides) < e.cfg.StrideTableSize {
				e.strides[ev.PC] = &strideEntry{lastAddr: addr, lastCycle: ev.Cycle}
			}
		} else {
			stride := int64(addr) - int64(s.lastAddr)
			if stride == s.stride && stride != 0 {
				s.confirmed = true
			} else {
				s.stride = stride
				s.confirmed = false
			}
			s.lastAddr = addr
			s.lastCycle = ev.Cycle
			if s.confirmed {
				next := uint64(int64(addr)+s.stride) >> 6
				issued += e.issue(next, ev.Cycle)
			}
		}
	}
	e.lastLine = ev.LineAddr
	e.haveLast = true
	e.lastSeen = ev.Cycle
	return issued
}

// issue records a prefetch unless one is already in flight for the line.
func (e *Engine) issue(lineAddr, cycle uint64) int {
	if _, ok := e.inflight[lineAddr]; ok {
		return 0
	}
	e.inflight[lineAddr] = inflight{issuedAt: cycle}
	e.stats.Issued++
	return 1
}

// expire retires prefetches older than the lookahead window.
func (e *Engine) expire(now uint64) {
	if len(e.inflight) == 0 {
		return
	}
	// The in-flight table is small (bounded by issue rate * lookahead);
	// a periodic sweep keeps this O(1) amortized.
	if now < e.lastSeen+e.cfg.Lookahead/4 {
		return
	}
	for line, rec := range e.inflight {
		if now-rec.issuedAt > e.cfg.Lookahead {
			e.stats.Useless++
			delete(e.inflight, line)
		}
	}
}

// Finish retires all remaining in-flight prefetches as useless and returns
// the final statistics. Totals are flushed to telemetry here — once per
// engine lifetime — so Access stays free of shared-memory traffic.
func (e *Engine) Finish() EngineStats {
	for line := range e.inflight {
		e.stats.Useless++
		delete(e.inflight, line)
	}
	sc := telemetry.Default().Scope("prefetch")
	sc.Counter("engines_finished").Add(1)
	sc.Counter("demand_accesses").Add(e.stats.DemandAccesses)
	sc.Counter("demand_misses").Add(e.stats.DemandMisses)
	sc.Counter("issued").Add(e.stats.Issued)
	sc.Counter("useful").Add(e.stats.Useful)
	sc.Counter("late").Add(e.stats.Late)
	sc.Counter("useless").Add(e.stats.Useless)
	sc.Counter("covered_misses").Add(e.stats.CoveredMisses)
	return e.stats
}
