package prefetch

// Engine is an implementable hardware prefetcher — next-line plus per-PC
// stride — as opposed to the oracle-side interval Classifier. It watches
// the demand access stream, issues prefetch requests, and accounts for
// their usefulness, which is what lets the library check the premise of
// Section 5 ("most of the cache misses can be captured by these schemes",
// citing Sair, Sherwood and Calder): the coverage and accuracy of the
// predictors on each workload.
//
// The engine is evaluated against the trace rather than mutating the
// simulated cache: a prefetch is *useful* if the predicted line is
// demanded within Lookahead cycles of being issued, *late* if the demand
// arrives before the prefetch could have completed, and *useless* if no
// demand arrives before the entry ages out.

import (
	"fmt"

	"leakbound/internal/sim/stream"
	"leakbound/internal/sim/trace"
	"leakbound/internal/telemetry"
	"leakbound/internal/u64map"
)

// EngineConfig controls the prefetch engine.
type EngineConfig struct {
	Config
	// Lookahead is the window (cycles) within which a prefetched line must
	// be demanded to count as useful; beyond it the prefetch is useless
	// (pollution). A few times the L2 latency is customary.
	Lookahead uint64
	// MinLatency is the earliest a prefetch can complete after issue
	// (the L2 hit latency); a demand arriving sooner makes the prefetch
	// late — it helps, but cannot fully hide the miss.
	MinLatency uint64
	// Degree is how many consecutive next lines one access may trigger
	// (degree-1 is classic next-line).
	Degree int
}

// DefaultEngineConfig returns a degree-1 engine with an L2-scaled window
// for the given predictor set.
func DefaultEngineConfig(cfg Config) EngineConfig {
	return EngineConfig{Config: cfg, Lookahead: 10000, MinLatency: 7, Degree: 1}
}

// Validate checks the configuration.
func (c EngineConfig) Validate() error {
	if err := c.Config.Validate(); err != nil {
		return err
	}
	if c.Lookahead == 0 {
		return fmt.Errorf("prefetch: zero lookahead")
	}
	if c.Degree <= 0 || c.Degree > 8 {
		return fmt.Errorf("prefetch: implausible degree %d", c.Degree)
	}
	return nil
}

// EngineStats summarizes the engine's behaviour over a trace.
type EngineStats struct {
	DemandAccesses uint64
	DemandMisses   uint64
	Issued         uint64 // prefetches issued
	Useful         uint64 // demanded within (MinLatency, Lookahead]
	Late           uint64 // demanded within [0, MinLatency]
	Useless        uint64 // aged out without a demand
	CoveredMisses  uint64 // demand misses whose line had a timely prefetch in flight
}

// Accuracy returns Useful / Issued.
func (s EngineStats) Accuracy() float64 {
	if s.Issued == 0 {
		return 0
	}
	return float64(s.Useful) / float64(s.Issued)
}

// Coverage returns the fraction of demand misses a timely prefetch covered.
func (s EngineStats) Coverage() float64 {
	if s.DemandMisses == 0 {
		return 0
	}
	return float64(s.CoveredMisses) / float64(s.DemandMisses)
}

// Engine is the prefetcher; feed it the demand access stream of one cache
// in cycle order via Access (or AccessBatch on the streaming path), then
// read Stats. The in-flight and stride tables are flat u64map tables; an
// in-flight entry stores issuedAt+1 so a fresh Upsert slot (zero) is
// distinguishable from a live record in a single probe.
type Engine struct {
	cfg EngineConfig
	// inflight maps lineAddr -> issue cycle + 1. Retired prefetches are
	// zeroed in place rather than deleted: tombstone churn on a small
	// table forces a compacting rehash (and its allocations) every few
	// retirements, whereas zeroed slots are simply reused by the next
	// issue to the same line. Paged storage: next-line issues land one
	// line past the demand stream, so the one-page memo absorbs almost
	// every probe.
	inflight  u64map.Pages
	inflightN int // live (non-zero) in-flight entries
	strides   u64map.Map[strideEntry]
	// shared, when set, replaces the engine's own stride table with the
	// classifier's (see ShareStrides): the engine reads the classifier's
	// published post-observation prediction instead of probing and
	// updating a duplicate table.
	shared   *Classifier
	stats    EngineStats
	lastSeen uint64
}

// NewEngine builds an engine.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Engine{cfg: cfg}, nil
}

// MustNewEngine panics on bad configuration.
func MustNewEngine(cfg EngineConfig) *Engine {
	e, err := NewEngine(cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// ShareStrides makes the engine read stride predictions from c's table
// instead of maintaining its own copy. Fed the same event stream, an engine
// and a classifier with the same predictor Config evolve bit-identical
// stride tables — the duplicate probe and update per data access is pure
// waste. The caller must deliver every access to c (via the collector's
// Classify/Observe path) before the corresponding Access on the engine,
// which is exactly the order the streaming sink dispatches in.
func (e *Engine) ShareStrides(c *Classifier) error {
	if c == nil {
		return fmt.Errorf("prefetch: nil classifier")
	}
	if e.cfg.Config != c.cfg {
		return fmt.Errorf("prefetch: predictor config mismatch: engine %+v, classifier %+v", e.cfg.Config, c.cfg)
	}
	if e.strides.Len() > 0 {
		return fmt.Errorf("prefetch: engine already has stride state")
	}
	e.shared = c
	return nil
}

// Access feeds one demand access. Returns the number of prefetches issued
// in response (useful mainly for tests).
func (e *Engine) Access(ev trace.Event) int {
	return e.AccessCols(ev.Cycle, ev.LineAddr, ev.PC, ev.Kind, ev.Miss)
}

// AccessBatch feeds every event for the given cache from a column batch,
// equivalent to calling Access per event but without materializing them.
func (e *Engine) AccessBatch(b *stream.Batch, cache trace.CacheID) {
	for i, n := 0, b.Len(); i < n; i++ {
		if b.Caches[i] == cache {
			e.AccessCols(b.Cycles[i], b.LineAddrs[i], b.PCs[i], b.Kinds[i], b.Misses[i])
		}
	}
}

// AccessCols is Access by columns — one demand access, no trace.Event box.
// The caller routes events: unlike AccessBatch there is no cache filter.
func (e *Engine) AccessCols(cycle, lineAddr, pc uint64, kind trace.Kind, miss bool) int {
	e.stats.DemandAccesses++
	e.expire(cycle)

	// Demand lookup against in-flight prefetches.
	if rec := e.inflight.Lookup(lineAddr); rec != nil && *rec != 0 {
		age := cycle - (*rec - 1)
		if age > e.cfg.MinLatency {
			e.stats.Useful++
			if miss {
				// The simulator's cache did not have the prefetch, but a
				// prefetching cache would have: count the miss as covered.
				e.stats.CoveredMisses++
			}
		} else {
			e.stats.Late++
		}
		*rec = 0
		e.inflightN--
	}
	if miss {
		e.stats.DemandMisses++
	}

	issued := 0
	// Next-line prediction.
	if e.cfg.NextLine {
		for d := 1; d <= e.cfg.Degree; d++ {
			issued += e.issue(lineAddr+uint64(d), cycle)
		}
	}
	// Stride prediction (data accesses only).
	if e.shared != nil {
		// The classifier already ran this event through an identical
		// stride table (the sink feeds it first); issue its prediction.
		if p := e.shared.predLine; p != 0 {
			issued += e.issue(p-1, cycle)
		}
	} else if e.cfg.Stride && kind != trace.Fetch {
		addr := lineAddr << 6
		s := e.strides.Ptr(pc)
		if s == nil {
			if e.cfg.StrideTableSize == 0 || e.strides.Len() < e.cfg.StrideTableSize {
				e.strides.Set(pc, strideEntry{lastAddr: addr, lastCycle: cycle})
			}
		} else {
			stride := int64(addr) - int64(s.lastAddr)
			if stride == s.stride && stride != 0 {
				s.confirmed = true
			} else {
				s.stride = stride
				s.confirmed = false
			}
			s.lastAddr = addr
			s.lastCycle = cycle
			if s.confirmed {
				next := uint64(int64(addr)+s.stride) >> 6
				issued += e.issue(next, cycle)
			}
		}
	}
	e.lastSeen = cycle
	return issued
}

// issue records a prefetch unless one is already in flight for the line.
// The issuedAt+1 encoding makes the present/absent check and the insert a
// single Upsert probe.
func (e *Engine) issue(lineAddr, cycle uint64) int {
	rec := e.inflight.Slot(lineAddr)
	if *rec != 0 {
		return 0
	}
	*rec = cycle + 1
	e.inflightN++
	e.stats.Issued++
	return 1
}

// expire retires prefetches older than the lookahead window.
func (e *Engine) expire(now uint64) {
	if e.inflightN == 0 {
		return
	}
	// The live set is small (bounded by issue rate * lookahead); a
	// periodic sweep keeps this O(1) amortized.
	if now < e.lastSeen+e.cfg.Lookahead/4 {
		return
	}
	e.inflight.Each(func(_ uint64, rec *uint64) bool {
		if *rec != 0 && now-(*rec-1) > e.cfg.Lookahead {
			e.stats.Useless++
			*rec = 0
			e.inflightN--
		}
		return true
	})
}

// Finish retires all remaining in-flight prefetches as useless and returns
// the final statistics. Totals are flushed to telemetry here — once per
// engine lifetime — so Access stays free of shared-memory traffic.
func (e *Engine) Finish() EngineStats {
	e.stats.Useless += uint64(e.inflightN)
	e.inflightN = 0
	e.inflight = u64map.Pages{}
	sc := telemetry.Default().Scope("prefetch")
	sc.Counter("engines_finished").Add(1)
	sc.Counter("demand_accesses").Add(e.stats.DemandAccesses)
	sc.Counter("demand_misses").Add(e.stats.DemandMisses)
	sc.Counter("issued").Add(e.stats.Issued)
	sc.Counter("useful").Add(e.stats.Useful)
	sc.Counter("late").Add(e.stats.Late)
	sc.Counter("useless").Add(e.stats.Useless)
	sc.Counter("covered_misses").Add(e.stats.CoveredMisses)
	return e.stats
}
