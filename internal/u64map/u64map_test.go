package u64map

import (
	"math/rand"
	"testing"
)

func TestBasicOps(t *testing.T) {
	m := New[uint64](0)
	if m.Len() != 0 {
		t.Fatalf("fresh Len = %d", m.Len())
	}
	if _, ok := m.Get(7); ok {
		t.Fatal("Get on empty table")
	}
	m.Set(7, 70)
	m.Set(0, 5) // zero key must work like any other
	m.Set(7, 71)
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	if v, ok := m.Get(7); !ok || v != 71 {
		t.Errorf("Get(7) = %v,%v", v, ok)
	}
	if v, ok := m.Get(0); !ok || v != 5 {
		t.Errorf("Get(0) = %v,%v", v, ok)
	}
	if !m.Delete(7) || m.Delete(7) {
		t.Error("Delete semantics")
	}
	if _, ok := m.Get(7); ok {
		t.Error("Get after Delete")
	}
	if m.Len() != 1 {
		t.Errorf("Len after delete = %d", m.Len())
	}
}

func TestUpsertPointer(t *testing.T) {
	m := New[int](0)
	p := m.Upsert(42)
	if *p != 0 {
		t.Fatalf("fresh Upsert value = %d", *p)
	}
	*p = 9
	if v, _ := m.Get(42); v != 9 {
		t.Fatalf("write through Upsert pointer lost: %d", v)
	}
	if q := m.Ptr(42); q == nil || *q != 9 {
		t.Fatal("Ptr disagreement")
	}
	if m.Ptr(43) != nil {
		t.Fatal("Ptr on absent key")
	}
}

func TestAgainstStdMap(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := New[uint64](0)
	ref := map[uint64]uint64{}
	const keySpace = 512 // force collisions and reuse
	for i := 0; i < 200000; i++ {
		k := uint64(rng.Intn(keySpace))
		switch rng.Intn(4) {
		case 0, 1: // insert/update
			v := rng.Uint64()
			m.Set(k, v)
			ref[k] = v
		case 2: // delete
			got := m.Delete(k)
			_, want := ref[k]
			if got != want {
				t.Fatalf("op %d: Delete(%d) = %v, want %v", i, k, got, want)
			}
			delete(ref, k)
		case 3: // increment through Upsert
			*m.Upsert(k)++
			ref[k]++
		}
	}
	if m.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", m.Len(), len(ref))
	}
	for k, want := range ref {
		if got, ok := m.Get(k); !ok || got != want {
			t.Fatalf("Get(%d) = %v,%v want %v", k, got, ok, want)
		}
	}
	seen := map[uint64]uint64{}
	m.Each(func(k uint64, v *uint64) bool {
		seen[k] = *v
		return true
	})
	if len(seen) != len(ref) {
		t.Fatalf("Each visited %d entries, want %d", len(seen), len(ref))
	}
	for k, want := range ref {
		if seen[k] != want {
			t.Fatalf("Each saw %d=%d, want %d", k, seen[k], want)
		}
	}
}

func TestEachEarlyStop(t *testing.T) {
	m := New[int](0)
	for k := uint64(0); k < 100; k++ {
		m.Set(k, 1)
	}
	n := 0
	m.Each(func(uint64, *int) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Fatalf("Each visited %d after early stop", n)
	}
}

func TestTombstoneCompaction(t *testing.T) {
	// Churn a small key set: deletions must not grow the table unboundedly
	// or break lookups (the rehash path compacts tombstones).
	m := New[int](0)
	for i := 0; i < 100000; i++ {
		k := uint64(i % 8)
		m.Set(k, i)
		m.Delete(k)
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d after balanced churn", m.Len())
	}
	if got := len(m.keys); got > 256 {
		t.Fatalf("table grew to %d slots under churn; tombstones not compacted", got)
	}
}

func TestZeroValueMap(t *testing.T) {
	var m Map[int]
	if _, ok := m.Get(1); ok {
		t.Fatal("Get on zero Map")
	}
	if m.Delete(1) {
		t.Fatal("Delete on zero Map")
	}
	m.Set(1, 2)
	if v, ok := m.Get(1); !ok || v != 2 {
		t.Fatal("Set/Get on zero Map")
	}
}

func BenchmarkUpsertGet(b *testing.B) {
	m := New[uint64](0)
	for i := 0; i < b.N; i++ {
		k := uint64(i) & 4095
		*m.Upsert(k) = uint64(i)
		if v, ok := m.Get(k ^ 1); ok {
			_ = v
		}
	}
}
