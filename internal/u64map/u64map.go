// Package u64map provides a linear-probing hash table with uint64 keys,
// built for the simulator's per-event hot paths (prefetch predictor
// tables, sparse interval buckets) where Go's generic map machinery —
// hashing through memhash, group probing, incremental growth — dominates
// the profile. The table trades those features for a flat layout: one
// state byte, one key word and one value per slot, a multiplicative hash
// and a linear probe, which the compiler inlines into a few loads per
// lookup.
//
// The table is deterministic: identical operation sequences produce
// identical iteration order (slot order), unlike Go maps' seeded
// iteration. Callers in this repo only fold iterated values into
// order-independent sums, but determinism here means the property holds
// by construction rather than by discipline.
//
// Not safe for concurrent use; every call site owns its table from one
// goroutine, matching the SPSC discipline of the streaming pipeline.
package u64map

const (
	slotEmpty uint8 = iota
	slotFull
	slotDead // tombstone: key deleted, probe chains pass through
)

// minCap keeps tiny tables from rehashing constantly.
const minCap = 16

// Map is an open-addressing uint64-keyed hash table.
type Map[V any] struct {
	state []uint8
	keys  []uint64
	vals  []V
	live  int
	dead  int
	shift uint // 64 - log2(len(keys))
}

// New returns a table pre-sized for at least hint entries.
func New[V any](hint int) *Map[V] {
	capacity := minCap
	for capacity < hint*2 {
		capacity *= 2
	}
	m := &Map[V]{}
	m.init(capacity)
	return m
}

func (m *Map[V]) init(capacity int) {
	m.state = make([]uint8, capacity)
	m.keys = make([]uint64, capacity)
	m.vals = make([]V, capacity)
	m.live, m.dead = 0, 0
	shift := uint(64)
	for c := capacity; c > 1; c >>= 1 {
		shift--
	}
	m.shift = shift
}

// Len returns the number of live entries.
func (m *Map[V]) Len() int { return m.live }

// hash spreads the key with a Fibonacci multiplier; the high bits (the
// well-mixed ones after multiplication) select the slot.
func (m *Map[V]) hash(k uint64) uint64 {
	return (k * 0x9E3779B97F4A7C15) >> m.shift
}

// Get returns the value for k.
func (m *Map[V]) Get(k uint64) (V, bool) {
	if p := m.Ptr(k); p != nil {
		return *p, true
	}
	var zero V
	return zero, false
}

// Ptr returns a pointer to k's value, or nil if absent. The pointer is
// valid until the next Upsert (which may grow the table).
func (m *Map[V]) Ptr(k uint64) *V {
	if m.state == nil {
		return nil
	}
	mask := uint64(len(m.keys) - 1)
	for i := m.hash(k); ; i = (i + 1) & mask {
		switch m.state[i] {
		case slotEmpty:
			return nil
		case slotFull:
			if m.keys[i] == k {
				return &m.vals[i]
			}
		}
	}
}

// Upsert returns a pointer to k's value, inserting the zero value first
// if k is absent. The pointer is valid until the next Upsert.
func (m *Map[V]) Upsert(k uint64) *V {
	if m.state == nil {
		//lint:ignore hotalloc lazy first-touch init; table growth is amortized doubling
		m.init(minCap)
	}
	// Grow before probing so the returned pointer survives this call.
	if (m.live+m.dead+1)*4 > len(m.keys)*3 {
		m.rehash()
	}
	mask := uint64(len(m.keys) - 1)
	firstDead := -1
	for i := m.hash(k); ; i = (i + 1) & mask {
		switch m.state[i] {
		case slotEmpty:
			if firstDead >= 0 {
				i = uint64(firstDead)
				m.dead--
			}
			m.state[i] = slotFull
			m.keys[i] = k
			var zero V
			m.vals[i] = zero
			m.live++
			return &m.vals[i]
		case slotFull:
			if m.keys[i] == k {
				return &m.vals[i]
			}
		case slotDead:
			if firstDead < 0 {
				firstDead = int(i)
			}
		}
	}
}

// Set stores v under k.
func (m *Map[V]) Set(k uint64, v V) { *m.Upsert(k) = v }

// Delete removes k, reporting whether it was present.
func (m *Map[V]) Delete(k uint64) bool {
	if m.state == nil {
		return false
	}
	mask := uint64(len(m.keys) - 1)
	for i := m.hash(k); ; i = (i + 1) & mask {
		switch m.state[i] {
		case slotEmpty:
			return false
		case slotFull:
			if m.keys[i] == k {
				m.state[i] = slotDead
				var zero V
				m.vals[i] = zero
				m.live--
				m.dead++
				return true
			}
		}
	}
}

// Each calls fn for every live entry in slot order; iteration stops when
// fn returns false. fn may write through the value pointer but must not
// insert or delete entries.
func (m *Map[V]) Each(fn func(k uint64, v *V) bool) {
	for i, s := range m.state {
		if s == slotFull {
			if !fn(m.keys[i], &m.vals[i]) {
				return
			}
		}
	}
}

// rehash doubles capacity — or merely compacts tombstones when they are
// the bulk of the occupancy — and reinserts every live entry.
func (m *Map[V]) rehash() {
	capacity := len(m.keys)
	if m.live*4 > capacity {
		capacity *= 2
	}
	oldState, oldKeys, oldVals := m.state, m.keys, m.vals
	m.init(capacity)
	mask := uint64(capacity - 1)
	for i, s := range oldState {
		if s != slotFull {
			continue
		}
		k := oldKeys[i]
		j := m.hash(k)
		for m.state[j] == slotFull {
			j = (j + 1) & mask
		}
		m.state[j] = slotFull
		m.keys[j] = k
		m.vals[j] = oldVals[i]
		m.live++
	}
}

// Pages is a uint64 -> uint64 map specialized for line-address keys, where
// the zero value means "absent" (both hot-path users — last-access tables
// and in-flight prefetch records — already encode presence as value+1).
// Values live in fixed 512-entry pages keyed by k>>9, found through a Map
// of page pointers, with a one-page memo in front: cache lines are
// accessed with strong spatial locality (sequential code, strided data),
// so most lookups hit the memoed page and cost a shift, a compare and an
// array index. Pages never move once allocated, so slot pointers are
// stable for the lifetime of the Pages.
type Pages struct {
	table   Map[*[pageSize]uint64]
	memoKey uint64 // page key + 1; 0 = no memo
	memo    *[pageSize]uint64
}

const (
	pageShift = 9
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

// Slot returns a pointer to k's value, materializing its page on first
// touch. The memo-hit fast path is small enough to inline into per-event
// callers; only a page switch pays a call.
func (p *Pages) Slot(k uint64) *uint64 {
	if k>>pageShift+1 != p.memoKey {
		return p.slotSlow(k)
	}
	return &p.memo[k&pageMask]
}

func (p *Pages) slotSlow(k uint64) *uint64 {
	pk := k >> pageShift
	pp := p.table.Upsert(pk)
	if *pp == nil {
		//lint:ignore hotalloc one 4KB page per 512 distinct keys, first touch only
		*pp = new([pageSize]uint64)
	}
	p.memoKey, p.memo = pk+1, *pp
	return &p.memo[k&pageMask]
}

// Lookup returns a pointer to k's value, or nil if its page was never
// touched. Unlike Slot it allocates nothing; like Slot, a memo hit stays
// inline in the caller.
//
//lint:hotpath
func (p *Pages) Lookup(k uint64) *uint64 {
	if k>>pageShift+1 != p.memoKey {
		return p.lookupSlow(k)
	}
	return &p.memo[k&pageMask]
}

func (p *Pages) lookupSlow(k uint64) *uint64 {
	pk := k >> pageShift
	if pg, ok := p.table.Get(pk); ok {
		p.memoKey, p.memo = pk+1, pg
		return &pg[k&pageMask]
	}
	return nil
}

// Get returns k's value, or 0 if absent.
//
//lint:hotpath
func (p *Pages) Get(k uint64) uint64 {
	if k>>pageShift+1 != p.memoKey {
		return p.getSlow(k)
	}
	return p.memo[k&pageMask]
}

func (p *Pages) getSlow(k uint64) uint64 {
	if v := p.lookupSlow(k); v != nil {
		return *v
	}
	return 0
}

// Each calls fn for every non-zero value in page-table slot order, then
// ascending key within each page; iteration stops when fn returns false.
// fn may write through the value pointer (including zeroing it) but must
// not call Slot.
func (p *Pages) Each(fn func(k uint64, v *uint64) bool) {
	p.table.Each(func(pk uint64, pg **[pageSize]uint64) bool {
		base := pk << pageShift
		for i := range *pg {
			if (*pg)[i] == 0 {
				continue
			}
			if !fn(base|uint64(i), &(*pg)[i]) {
				return false
			}
		}
		return true
	})
}
