// Package telemetry is the observability substrate for the simulation
// pipeline: dependency-free atomic counters, gauges, and log2-bucketed
// histograms, organized into named scopes under a registry that snapshots
// deterministically to text and JSON.
//
// The hot paths (cpu.Run, interval.Collector, prefetch.Engine) accumulate
// locally and flush into the default registry once per run/Finish, so
// instrumentation costs nothing per simulated event; coarse-grained callers
// (experiments.Suite, the worker pool) record directly. All metric
// operations are safe for concurrent use; snapshots observe each metric
// atomically (counters are exact, cross-metric consistency is best-effort).
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous atomic value that may move in both directions.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta (which may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// numBuckets covers the full uint64 range: bucket 0 holds zeros, bucket i
// (1..64) holds values in [2^(i-1), 2^i - 1].
const numBuckets = 65

// Histogram counts observations in fixed log2 buckets — the same power-of-
// two framing the interval study itself uses — plus exact count, sum, min,
// and max. Suited to latencies (nanoseconds) and sizes (events, cycles).
type Histogram struct {
	buckets [numBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64

	mm       sync.Mutex // guards min/max only
	seen     bool
	min, max uint64
}

// bucketIndex returns the log2 bucket for v: 0 for v == 0, otherwise
// bits.Len64(v) so that bucket i spans [2^(i-1), 2^i - 1].
func bucketIndex(v uint64) int { return bits.Len64(v) }

// BucketBounds returns the inclusive [low, high] value range of bucket i.
func BucketBounds(i int) (low, high uint64) {
	if i <= 0 {
		return 0, 0
	}
	if i >= 64 {
		return 1 << 63, math.MaxUint64
	}
	return 1 << (i - 1), 1<<i - 1
}

// Record adds one observation.
func (h *Histogram) Record(v uint64) {
	h.count.Add(1)
	h.buckets[bucketIndex(v)].Add(1)
	h.sum.Add(v)
	h.mm.Lock()
	if !h.seen || v < h.min {
		h.min = v
	}
	if !h.seen || v > h.max {
		h.max = v
	}
	h.seen = true
	h.mm.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Snapshot captures the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
	}
	h.mm.Lock()
	s.Min, s.Max = h.min, h.max
	h.mm.Unlock()
	for i := 0; i < numBuckets; i++ {
		if c := h.buckets[i].Load(); c > 0 {
			low, high := BucketBounds(i)
			s.Buckets = append(s.Buckets, Bucket{Low: low, High: high, Count: c})
		}
	}
	return s
}

// Bucket is one non-empty log2 bucket in a histogram snapshot.
type Bucket struct {
	Low   uint64 `json:"low"`
	High  uint64 `json:"high"`
	Count uint64 `json:"count"`
}

// HistogramSnapshot is a point-in-time view of a histogram; only non-empty
// buckets appear, in ascending value order.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Min     uint64   `json:"min"`
	Max     uint64   `json:"max"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Mean returns the average observed value.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Scope is a named group of metrics within a registry. Metric accessors
// create on first use and always return the same instance for a name, so
// hot paths may cache the pointer or re-look it up as convenient.
type Scope struct {
	name string

	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// Name returns the scope's name.
func (s *Scope) Name() string { return s.name }

// Counter returns the named counter, creating it at zero on first use.
func (s *Scope) Counter(name string) *Counter {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.counters[name]
	if !ok {
		c = &Counter{}
		s.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it at zero on first use.
func (s *Scope) Gauge(name string) *Gauge {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.gauges[name]
	if !ok {
		g = &Gauge{}
		s.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it empty on first use.
func (s *Scope) Histogram(name string) *Histogram {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.histograms[name]
	if !ok {
		h = &Histogram{}
		s.histograms[name] = h
	}
	return h
}

// snapshot captures the scope under its lock.
func (s *Scope) snapshot() ScopeSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := ScopeSnapshot{
		Counters:   make(map[string]uint64, len(s.counters)),
		Gauges:     make(map[string]int64, len(s.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.histograms)),
	}
	for name, c := range s.counters {
		out.Counters[name] = c.Value()
	}
	for name, g := range s.gauges {
		out.Gauges[name] = g.Value()
	}
	for name, h := range s.histograms {
		out.Histograms[name] = h.Snapshot()
	}
	return out
}

// Registry holds named scopes. The zero value is not usable; call
// NewRegistry, or use the process-wide Default registry.
type Registry struct {
	mu     sync.Mutex
	scopes map[string]*Scope
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{scopes: make(map[string]*Scope)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry the simulation pipeline reports
// into.
func Default() *Registry { return defaultRegistry }

// Scope returns the named scope, creating it on first use.
func (r *Registry) Scope(name string) *Scope {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.scopes[name]
	if !ok {
		s = &Scope{
			name:       name,
			counters:   make(map[string]*Counter),
			gauges:     make(map[string]*Gauge),
			histograms: make(map[string]*Histogram),
		}
		r.scopes[name] = s
	}
	return s
}

// Reset drops every scope and metric; intended for tests and for
// long-running sweeps that want per-phase snapshots.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.scopes = make(map[string]*Scope)
}

// ScopeSnapshot is a point-in-time view of one scope's metrics.
type ScopeSnapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot is a point-in-time view of a whole registry, keyed by scope
// name. JSON encoding is deterministic (Go serializes map keys sorted).
type Snapshot map[string]ScopeSnapshot

// Snapshot captures every scope.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	scopes := make([]*Scope, 0, len(r.scopes))
	for _, s := range r.scopes {
		scopes = append(scopes, s)
	}
	r.mu.Unlock()
	out := make(Snapshot, len(scopes))
	for _, s := range scopes {
		out[s.name] = s.snapshot()
	}
	return out
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteText writes the snapshot as an aligned, deterministic text listing:
// scopes sorted by name, metrics sorted within each scope.
func (s Snapshot) WriteText(w io.Writer) error {
	scopeNames := make([]string, 0, len(s))
	for name := range s {
		scopeNames = append(scopeNames, name)
	}
	sort.Strings(scopeNames)
	for _, scope := range scopeNames {
		sc := s[scope]
		if _, err := fmt.Fprintf(w, "%s:\n", scope); err != nil {
			return err
		}
		for _, name := range sortedKeys(sc.Counters) {
			if _, err := fmt.Fprintf(w, "  %-28s %d\n", name, sc.Counters[name]); err != nil {
				return err
			}
		}
		for _, name := range sortedKeys(sc.Gauges) {
			if _, err := fmt.Fprintf(w, "  %-28s %d\n", name, sc.Gauges[name]); err != nil {
				return err
			}
		}
		for _, name := range sortedKeys(sc.Histograms) {
			h := sc.Histograms[name]
			if _, err := fmt.Fprintf(w, "  %-28s count=%d sum=%d min=%d max=%d mean=%.1f\n",
				name, h.Count, h.Sum, h.Min, h.Max, h.Mean()); err != nil {
				return err
			}
			for _, b := range h.Buckets {
				if _, err := fmt.Fprintf(w, "    [%d, %d]: %d\n", b.Low, b.High, b.Count); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
