package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestRegisterDebugInRoutes pins the status codes and content types of the
// whole debug surface.
func TestRegisterDebugInRoutes(t *testing.T) {
	reg := NewRegistry()
	reg.Scope("demo").Counter("events").Add(3)
	mux := http.NewServeMux()
	RegisterDebugIn(mux, reg)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	cases := []struct {
		path     string
		wantCT   string // substring
		wantBody string // substring, "" = skip
	}{
		{"/metrics", "text/plain", "demo:"},
		{"/metrics.json", "application/json", `"events": 3`},
		{"/debug/vars", "application/json", ""},
		{"/debug/pprof/", "", ""},
		{"/debug/pprof/cmdline", "", ""},
		{"/debug/pprof/symbol", "", ""},
	}
	for _, c := range cases {
		resp, err := ts.Client().Get(ts.URL + c.path)
		if err != nil {
			t.Fatalf("GET %s: %v", c.path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d", c.path, resp.StatusCode)
			continue
		}
		if c.wantCT != "" && !strings.Contains(resp.Header.Get("Content-Type"), c.wantCT) {
			t.Errorf("%s: content type %q, want %q", c.path, resp.Header.Get("Content-Type"), c.wantCT)
		}
		if c.wantBody != "" && !strings.Contains(string(body), c.wantBody) {
			t.Errorf("%s: body %q missing %q", c.path, body, c.wantBody)
		}
	}
}

// TestMetricsSnapshotDeterministic: with no intervening writes, two
// requests return byte-identical snapshots in both encodings.
func TestMetricsSnapshotDeterministic(t *testing.T) {
	reg := NewRegistry()
	sc := reg.Scope("suite")
	sc.Counter("sims").Add(7)
	sc.Gauge("inflight").Set(2)
	sc.Histogram("latency_ns").Record(1024)
	sc.Histogram("latency_ns").Record(4096)
	mux := http.NewServeMux()
	RegisterDebugIn(mux, reg)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	for _, path := range []string{"/metrics", "/metrics.json"} {
		fetch := func() string {
			resp, err := ts.Client().Get(ts.URL + path)
			if err != nil {
				t.Fatalf("GET %s: %v", path, err)
			}
			defer resp.Body.Close()
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatalf("read %s: %v", path, err)
			}
			return string(body)
		}
		first, second := fetch(), fetch()
		if first != second {
			t.Errorf("%s snapshot not deterministic:\n--- first\n%s\n--- second\n%s", path, first, second)
		}
	}
	// The JSON encoding must round-trip.
	resp, err := ts.Client().Get(ts.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("metrics.json does not parse: %v", err)
	}
	if _, ok := v["suite"]; !ok {
		t.Errorf("metrics.json missing the suite scope: %v", v)
	}
}

// TestDebugMuxServesDefaultRegistry: the package-level mux reads the
// default registry.
func TestDebugMuxServesDefaultRegistry(t *testing.T) {
	name := "serve_test_unique_counter"
	Default().Scope("serve_test").Counter(name).Add(1)
	ts := httptest.NewServer(DebugMux())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), name) {
		t.Errorf("DebugMux /metrics missing %q", name)
	}
}
