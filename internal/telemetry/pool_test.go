package telemetry

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestPoolRunsEveryTask(t *testing.T) {
	r := NewRegistry()
	p := NewPoolIn(r, 4)
	var ran atomic.Int64
	const n = 50
	for i := 0; i < n; i++ {
		p.Go(func() error {
			ran.Add(1)
			return nil
		})
	}
	if err := p.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if ran.Load() != n {
		t.Errorf("ran %d tasks, want %d", ran.Load(), n)
	}
	sc := r.Scope("pool")
	if got := sc.Counter("tasks_submitted").Value(); got != n {
		t.Errorf("tasks_submitted = %d, want %d", got, n)
	}
	if got := sc.Counter("tasks_completed").Value(); got != n {
		t.Errorf("tasks_completed = %d, want %d", got, n)
	}
	if got := sc.Counter("tasks_failed").Value(); got != 0 {
		t.Errorf("tasks_failed = %d, want 0", got)
	}
	if got := sc.Histogram("task_ns").Count(); got != n {
		t.Errorf("task_ns count = %d, want %d", got, n)
	}
	if got := sc.Gauge("workers_busy").Value(); got != 0 {
		t.Errorf("workers_busy after Wait = %d, want 0", got)
	}
}

func TestPoolFirstErrorWinsAndDrains(t *testing.T) {
	r := NewRegistry()
	p := NewPoolIn(r, 2)
	sentinel := errors.New("boom")
	var ran atomic.Int64
	const n = 20
	for i := 0; i < n; i++ {
		i := i
		p.Go(func() error {
			ran.Add(1)
			if i == 3 {
				return sentinel
			}
			if i > 10 {
				return fmt.Errorf("late error %d", i)
			}
			return nil
		})
	}
	err := p.Wait()
	if err == nil {
		t.Fatal("Wait returned nil, want an error")
	}
	// Every task still ran: a failure never cancels its peers.
	if ran.Load() != n {
		t.Errorf("ran %d tasks, want %d (pool must drain)", ran.Load(), n)
	}
	if got := r.Scope("pool").Counter("tasks_completed").Value(); got != n {
		t.Errorf("tasks_completed = %d, want %d", got, n)
	}
	if got := r.Scope("pool").Counter("tasks_failed").Value(); got == 0 {
		t.Error("tasks_failed = 0, want > 0")
	}
	// With 2 workers pulling in submission order, task 3 fails while tasks
	// 11+ are still queued behind it, so the sentinel must win.
	if !errors.Is(err, sentinel) {
		t.Errorf("Wait = %v, want first error %v", err, sentinel)
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers = 3
	p := NewPoolIn(r, workers)
	var cur, peak atomic.Int64
	for i := 0; i < 40; i++ {
		p.Go(func() error {
			c := cur.Add(1)
			for {
				old := peak.Load()
				if c <= old || peak.CompareAndSwap(old, c) {
					break
				}
			}
			// Burn a little work so tasks overlap.
			s := 0
			for j := 0; j < 10000; j++ {
				s += j
			}
			_ = s
			cur.Add(-1)
			return nil
		})
	}
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if peak.Load() > workers {
		t.Errorf("observed %d concurrent tasks, want <= %d", peak.Load(), workers)
	}
	if got := r.Scope("pool").Gauge("workers").Value(); got != workers {
		t.Errorf("workers gauge = %d, want %d", got, workers)
	}
}

func TestPoolDefaultWorkerCount(t *testing.T) {
	r := NewRegistry()
	p := NewPoolIn(r, 0)
	p.Go(func() error { return nil })
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := r.Scope("pool").Gauge("workers").Value(); got < 1 {
		t.Errorf("workers gauge = %d, want >= 1 (GOMAXPROCS default)", got)
	}
}

func TestPoolNilTask(t *testing.T) {
	p := NewPoolIn(NewRegistry(), 1)
	p.Go(nil)
	if err := p.Wait(); err == nil {
		t.Error("nil task accepted without error")
	}
}
