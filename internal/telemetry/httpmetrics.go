package telemetry

// HTTP middleware metrics for the serving layer: per-route request
// counters, status-class counters, and log2 latency histograms, recorded
// into a registry scope with the same deterministic snapshot surface as
// the simulation metrics. The middleware is dependency-free and cheap —
// one counter add, one histogram record, one gauge pair per request — so
// it wraps every route of cmd/leakaged including /metrics itself.

import (
	"fmt"
	"net/http"
	"time"
)

// statusRecorder captures the status code a handler writes (200 if the
// handler never calls WriteHeader explicitly).
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(b)
	r.bytes += int64(n)
	return n, err
}

// Flush forwards http.Flusher so streaming handlers keep working wrapped.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// HTTPMetrics instruments an http.Handler with per-route metrics in the
// scope named scopeName of reg:
//
//	requests/<route>         counter of completed requests
//	status/<class>/<route>   counter per status class (2xx, 3xx, 4xx, 5xx)
//	latency_ns/<route>       log2 histogram of wall time
//	inflight                 gauge of currently-executing requests
//
// route is a stable label (the mux pattern's path), never the raw URL, so
// the metric space stays bounded no matter what clients request.
func HTTPMetrics(reg *Registry, scopeName, route string, next http.Handler) http.Handler {
	sc := reg.Scope(scopeName)
	requests := sc.Counter("requests/" + route)
	latency := sc.Histogram("latency_ns/" + route)
	inflight := sc.Gauge("inflight")
	classes := [4]*Counter{
		sc.Counter("status/2xx/" + route),
		sc.Counter("status/3xx/" + route),
		sc.Counter("status/4xx/" + route),
		sc.Counter("status/5xx/" + route),
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		inflight.Add(1)
		rec := &statusRecorder{ResponseWriter: w}
		next.ServeHTTP(rec, r)
		inflight.Add(-1)
		requests.Add(1)
		latency.Record(uint64(time.Since(start).Nanoseconds()))
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		if class := rec.status/100 - 2; class >= 0 && class < len(classes) {
			classes[class].Add(1)
		} else {
			sc.Counter(fmt.Sprintf("status/%d/%s", rec.status, route)).Add(1)
		}
	})
}
