package telemetry

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestHTTPMetricsCountsByStatusClass: the middleware counts requests,
// buckets statuses by class, and records a latency sample per request.
func TestHTTPMetricsCountsByStatusClass(t *testing.T) {
	reg := NewRegistry()
	h := HTTPMetrics(reg, "http", "/probe", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Query().Get("s") {
		case "400":
			http.Error(w, "bad", http.StatusBadRequest)
		case "500":
			http.Error(w, "boom", http.StatusInternalServerError)
		default:
			w.Write([]byte("ok")) // implicit 200 via first Write
		}
	}))
	ts := httptest.NewServer(h)
	defer ts.Close()
	for _, q := range []string{"", "", "?s=400", "?s=500"} {
		resp, err := ts.Client().Get(ts.URL + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	sc := reg.Scope("http")
	checks := []struct {
		counter string
		want    uint64
	}{
		{"requests//probe", 4},
		{"status/2xx//probe", 2},
		{"status/4xx//probe", 1},
		{"status/5xx//probe", 1},
	}
	for _, c := range checks {
		if got := sc.Counter(c.counter).Value(); got != c.want {
			t.Errorf("%s = %d, want %d", c.counter, got, c.want)
		}
	}
	if got := sc.Histogram("latency_ns//probe").Count(); got != 4 {
		t.Errorf("latency samples = %d, want 4", got)
	}
	if got := sc.Gauge("inflight").Value(); got != 0 {
		t.Errorf("inflight gauge = %d after all requests done, want 0", got)
	}
}
