package telemetry

import (
	"bytes"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestObservabilityProfilesAndMetrics(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	o := Observability{
		Metrics:    true,
		CPUProfile: filepath.Join(dir, "cpu.pprof"),
		MemProfile: filepath.Join(dir, "mem.pprof"),
		MetricsOut: &buf,
	}
	stop, err := o.Start()
	if err != nil {
		t.Fatal(err)
	}
	Default().Scope("obstest").Counter("touched").Add(1)
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{o.CPUProfile, o.MemProfile} {
		info, err := os.Stat(p)
		if err != nil {
			t.Errorf("profile %s: %v", p, err)
		} else if info.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
	if !strings.Contains(buf.String(), "obstest:") {
		t.Errorf("metrics snapshot missing scope:\n%s", buf.String())
	}
}

func TestObservabilityDisabledIsNoop(t *testing.T) {
	stop, err := (Observability{}).Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestObservabilityBadProfilePath(t *testing.T) {
	_, err := (Observability{CPUProfile: filepath.Join(t.TempDir(), "no", "such", "dir", "p")}).Start()
	if err == nil {
		t.Error("unwritable cpu profile path accepted")
	}
}

func TestServeDebugEndpoints(t *testing.T) {
	addr, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	Default().Scope("servetest").Counter("hits").Add(3)
	for _, path := range []string{"/metrics", "/metrics.json", "/debug/vars"} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if !strings.Contains(string(body), "servetest") {
			t.Errorf("GET %s: body missing servetest scope:\n%s", path, body)
		}
	}
	resp, err := http.Get("http://" + addr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof cmdline: status %d", resp.StatusCode)
	}
}

func TestRegisterFlags(t *testing.T) {
	fs := newTestFlagSet()
	o := RegisterFlags(fs)
	if err := fs.Parse([]string{"-metrics", "-cpuprofile", "c.out", "-memprofile", "m.out", "-metrics-addr", ":0"}); err != nil {
		t.Fatal(err)
	}
	if !o.Metrics || o.CPUProfile != "c.out" || o.MemProfile != "m.out" || o.MetricsAddr != ":0" {
		t.Errorf("flags not bound: %+v", o)
	}
}

func newTestFlagSet() *flag.FlagSet {
	return flag.NewFlagSet("test", flag.ContinueOnError)
}
