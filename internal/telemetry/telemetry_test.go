package telemetry

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		value     uint64
		low, high uint64
	}{
		{0, 0, 0},
		{1, 1, 1},
		{2, 2, 3},
		{3, 2, 3},
		{4, 4, 7},
		{7, 4, 7},
		{8, 8, 15},
		{1023, 512, 1023},
		{1024, 1024, 2047},
		{1 << 62, 1 << 62, 1<<63 - 1},
		{1 << 63, 1 << 63, math.MaxUint64},
		{math.MaxUint64, 1 << 63, math.MaxUint64},
	}
	for _, c := range cases {
		i := bucketIndex(c.value)
		low, high := BucketBounds(i)
		if low != c.low || high != c.high {
			t.Errorf("value %d: bucket %d = [%d, %d], want [%d, %d]",
				c.value, i, low, high, c.low, c.high)
		}
		if c.value < low || c.value > high {
			t.Errorf("value %d falls outside its own bucket [%d, %d]", c.value, low, high)
		}
	}
}

func TestHistogramSnapshotStats(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 5, 5, 1024} {
		h.Record(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Errorf("count = %d, want 5", s.Count)
	}
	if s.Sum != 1035 {
		t.Errorf("sum = %d, want 1035", s.Sum)
	}
	if s.Min != 0 || s.Max != 1024 {
		t.Errorf("min/max = %d/%d, want 0/1024", s.Min, s.Max)
	}
	if got, want := s.Mean(), 1035.0/5; got != want {
		t.Errorf("mean = %g, want %g", got, want)
	}
	// Buckets: {0}, {1}, {5,5} in [4,7], {1024} in [1024,2047].
	wantBuckets := []Bucket{
		{Low: 0, High: 0, Count: 1},
		{Low: 1, High: 1, Count: 1},
		{Low: 4, High: 7, Count: 2},
		{Low: 1024, High: 2047, Count: 1},
	}
	if len(s.Buckets) != len(wantBuckets) {
		t.Fatalf("buckets = %+v, want %+v", s.Buckets, wantBuckets)
	}
	for i, b := range wantBuckets {
		if s.Buckets[i] != b {
			t.Errorf("bucket %d = %+v, want %+v", i, s.Buckets[i], b)
		}
	}
}

func TestSnapshotDeterminism(t *testing.T) {
	r := NewRegistry()
	// Populate scopes and metrics in a scattered order.
	r.Scope("zeta").Counter("c2").Add(7)
	r.Scope("alpha").Gauge("g").Set(-3)
	r.Scope("zeta").Counter("c1").Add(1)
	r.Scope("alpha").Histogram("h").Record(42)
	r.Scope("mid").Counter("x").Add(2)

	var text1, text2, json1, json2 bytes.Buffer
	if err := r.Snapshot().WriteText(&text1); err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot().WriteText(&text2); err != nil {
		t.Fatal(err)
	}
	if text1.String() != text2.String() {
		t.Errorf("text snapshots differ:\n%s\nvs\n%s", text1.String(), text2.String())
	}
	if err := r.Snapshot().WriteJSON(&json1); err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot().WriteJSON(&json2); err != nil {
		t.Fatal(err)
	}
	if json1.String() != json2.String() {
		t.Errorf("JSON snapshots differ:\n%s\nvs\n%s", json1.String(), json2.String())
	}
	// Scopes appear in sorted order in the text form.
	text := text1.String()
	ia, im, iz := strings.Index(text, "alpha:"), strings.Index(text, "mid:"), strings.Index(text, "zeta:")
	if ia < 0 || im < 0 || iz < 0 || !(ia < im && im < iz) {
		t.Errorf("scopes not sorted in text output:\n%s", text)
	}
}

func TestScopeReturnsSameMetricInstance(t *testing.T) {
	r := NewRegistry()
	if r.Scope("s").Counter("c") != r.Scope("s").Counter("c") {
		t.Error("Counter not identical across lookups")
	}
	if r.Scope("s").Gauge("g") != r.Scope("s").Gauge("g") {
		t.Error("Gauge not identical across lookups")
	}
	if r.Scope("s").Histogram("h") != r.Scope("s").Histogram("h") {
		t.Error("Histogram not identical across lookups")
	}
}

func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Mix registration with updates: every goroutine looks the
			// metrics up fresh each iteration.
			for i := 0; i < perG; i++ {
				sc := r.Scope("conc")
				sc.Counter("n").Add(1)
				sc.Gauge("g").Add(1)
				sc.Histogram("h").Record(uint64(i))
			}
		}(g)
	}
	wg.Wait()
	sc := r.Scope("conc")
	if got := sc.Counter("n").Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := sc.Gauge("g").Value(); got != goroutines*perG {
		t.Errorf("gauge = %d, want %d", got, goroutines*perG)
	}
	h := sc.Histogram("h").Snapshot()
	if h.Count != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", h.Count, goroutines*perG)
	}
	if h.Min != 0 || h.Max != perG-1 {
		t.Errorf("histogram min/max = %d/%d, want 0/%d", h.Min, h.Max, perG-1)
	}
}

func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	r.Scope("a").Counter("c").Add(5)
	r.Reset()
	if got := len(r.Snapshot()); got != 0 {
		t.Errorf("snapshot has %d scopes after Reset, want 0", got)
	}
	// The registry stays usable.
	r.Scope("a").Counter("c").Add(1)
	if got := r.Scope("a").Counter("c").Value(); got != 1 {
		t.Errorf("counter after Reset = %d, want 1", got)
	}
}

func TestGaugeSetAndAdd(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-25)
	if got := g.Value(); got != -15 {
		t.Errorf("gauge = %d, want -15", got)
	}
}

func TestEmptyHistogramSnapshot(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 || s.Min != 0 || s.Max != 0 || len(s.Buckets) != 0 {
		t.Errorf("empty histogram snapshot not zero: %+v", s)
	}
	if s.Mean() != 0 {
		t.Errorf("empty mean = %g, want 0", s.Mean())
	}
}
