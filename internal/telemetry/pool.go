package telemetry

// Pool is the bounded worker-pool scheduler for parallel simulation: a
// fixed number of workers (GOMAXPROCS by default) pull submitted tasks
// from a channel, so fanning out over an arbitrary number of benchmarks
// never spawns more than `workers` simulation goroutines at once. The
// pool reports into the "pool" scope of a registry: tasks submitted /
// completed / failed, the number of busy workers, and log2 histograms of
// task latency and queue wait.

import (
	"errors"
	"runtime"
	"sync"
	"time"
)

// Pool runs tasks on a fixed set of workers. Create with NewPool, submit
// with Go, then call Wait exactly once; the pool is not reusable after
// Wait.
type Pool struct {
	tasks chan poolTask
	wg    sync.WaitGroup

	errOnce sync.Once
	err     error

	submitted *Counter
	completed *Counter
	failed    *Counter
	busy      *Gauge
	latency   *Histogram
	queueWait *Histogram
}

type poolTask struct {
	fn       func() error
	enqueued time.Time
}

// NewPool starts a pool with the given number of workers, reporting into
// the default registry; workers <= 0 means runtime.GOMAXPROCS(0).
func NewPool(workers int) *Pool {
	return NewPoolIn(Default(), workers)
}

// NewPoolIn is NewPool reporting into an explicit registry.
func NewPoolIn(r *Registry, workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	scope := r.Scope("pool")
	p := &Pool{
		tasks:     make(chan poolTask),
		submitted: scope.Counter("tasks_submitted"),
		completed: scope.Counter("tasks_completed"),
		failed:    scope.Counter("tasks_failed"),
		busy:      scope.Gauge("workers_busy"),
		latency:   scope.Histogram("task_ns"),
		queueWait: scope.Histogram("queue_wait_ns"),
	}
	scope.Gauge("workers").Set(int64(workers))
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// Go submits one task. It blocks until a worker is free to accept it —
// that back-pressure is the bound — and must not be called after Wait.
// A nil task is counted as failed without being run.
func (p *Pool) Go(task func() error) {
	p.submitted.Add(1)
	if task == nil {
		p.failed.Add(1)
		p.errOnce.Do(func() { p.err = errors.New("telemetry: nil task submitted to pool") })
		return
	}
	p.tasks <- poolTask{fn: task, enqueued: time.Now()}
}

// Wait closes the pool, runs every submitted task to completion (a failed
// task never cancels its peers — the pool always drains cleanly), and
// returns the first error any task produced.
func (p *Pool) Wait() error {
	close(p.tasks)
	p.wg.Wait()
	return p.err
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for t := range p.tasks {
		start := time.Now()
		p.queueWait.Record(uint64(start.Sub(t.enqueued).Nanoseconds()))
		p.busy.Add(1)
		err := t.fn()
		p.busy.Add(-1)
		p.latency.Record(uint64(time.Since(start).Nanoseconds()))
		p.completed.Add(1)
		if err != nil {
			p.failed.Add(1)
			p.errOnce.Do(func() { p.err = err })
		}
	}
}
