package telemetry

// Observability is the shared flag-level front end the cmd/ binaries use:
// each main wires -metrics, -cpuprofile, -memprofile, and -metrics-addr
// into one Observability value, calls Start before its work and the
// returned stop function after, and gets CPU/heap profiles, a metrics
// snapshot, and an optional expvar+pprof debug server without duplicating
// the plumbing five times.

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
)

// Observability bundles the observability options common to every binary.
type Observability struct {
	// Metrics prints a text snapshot of the default registry to MetricsOut
	// (stderr when nil) when the returned stop function runs.
	Metrics bool
	// CPUProfile and MemProfile are output paths for runtime/pprof
	// profiles; empty disables them.
	CPUProfile string
	MemProfile string
	// MetricsAddr, when non-empty, serves /metrics, /debug/vars (expvar)
	// and /debug/pprof on that address for the lifetime of the process —
	// the long-sweep monitoring endpoint.
	MetricsAddr string
	// MetricsOut overrides where the -metrics snapshot is written.
	MetricsOut io.Writer
}

// RegisterFlags installs the standard observability flags (-metrics,
// -cpuprofile, -memprofile, -metrics-addr) on fs and returns the
// Observability they populate; call its Start after fs.Parse.
func RegisterFlags(fs *flag.FlagSet) *Observability {
	o := &Observability{}
	fs.BoolVar(&o.Metrics, "metrics", false, "print a telemetry snapshot to stderr when done")
	fs.StringVar(&o.CPUProfile, "cpuprofile", "", "write a CPU profile to `file`")
	fs.StringVar(&o.MemProfile, "memprofile", "", "write a heap profile to `file`")
	fs.StringVar(&o.MetricsAddr, "metrics-addr", "", "serve /metrics, expvar and pprof on `addr` (e.g. :6060)")
	return o
}

// Start begins CPU profiling and the debug server as configured and
// returns a stop function that finishes profiles and prints the metrics
// snapshot. stop is safe to call exactly once; on error some outputs may
// be incomplete but all started resources are released.
func (o Observability) Start() (stop func() error, err error) {
	var cpuFile *os.File
	if o.CPUProfile != "" {
		cpuFile, err = os.Create(o.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("telemetry: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("telemetry: cpu profile: %w", err)
		}
	}
	if o.MetricsAddr != "" {
		if _, err := ServeDebug(o.MetricsAddr); err != nil {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				cpuFile.Close()
			}
			return nil, err
		}
	}
	return func() error {
		var firstErr error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				firstErr = err
			}
		}
		if o.MemProfile != "" {
			if err := writeHeapProfile(o.MemProfile); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if o.Metrics {
			w := o.MetricsOut
			if w == nil {
				w = os.Stderr
			}
			if err := Default().Snapshot().WriteText(w); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}, nil
}

// writeHeapProfile dumps an up-to-date heap profile to path.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("telemetry: heap profile: %w", err)
	}
	runtime.GC() // materialize up-to-date allocation statistics
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("telemetry: heap profile: %w", err)
	}
	return f.Close()
}
