package telemetry

// The debug server exposes the default registry and the runtime's own
// introspection endpoints over HTTP for long sweeps:
//
//	/metrics      deterministic text snapshot (same as -metrics)
//	/metrics.json the snapshot as JSON
//	/debug/vars   expvar (includes the registry under "telemetry")
//	/debug/pprof  net/http/pprof profiles
//
// The server uses its own mux — nothing is registered on
// http.DefaultServeMux — so importing this package never changes a host
// program's routing.

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

var publishOnce sync.Once

// PublishExpvar exposes the default registry's snapshot as the expvar
// variable "telemetry". Idempotent; called automatically by ServeDebug.
func PublishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("telemetry", expvar.Func(func() any {
			return Default().Snapshot()
		}))
	})
}

// ServeDebug starts the debug HTTP server on addr (host:port; use ":0"
// for an ephemeral port) and returns the bound address. The server runs
// until the process exits.
func ServeDebug(addr string) (string, error) {
	PublishExpvar()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("telemetry: metrics server: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = Default().Snapshot().WriteText(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = Default().Snapshot().WriteJSON(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}
