package telemetry

// The debug server exposes the default registry and the runtime's own
// introspection endpoints over HTTP for long sweeps:
//
//	/metrics      deterministic text snapshot (same as -metrics)
//	/metrics.json the snapshot as JSON
//	/debug/vars   expvar (includes the registry under "telemetry")
//	/debug/pprof  net/http/pprof profiles
//
// The endpoints register on a caller-supplied mux (RegisterDebug) so the
// serving daemon can mount them next to its API routes, or on a private
// mux served standalone (ServeDebug) — nothing is ever registered on
// http.DefaultServeMux, so importing this package never changes a host
// program's routing.

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

var publishOnce sync.Once

// PublishExpvar exposes the default registry's snapshot as the expvar
// variable "telemetry". Idempotent; called automatically by RegisterDebug.
func PublishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("telemetry", expvar.Func(func() any {
			return Default().Snapshot()
		}))
	})
}

// RegisterDebug registers the debug endpoints on mux, snapshotting the
// default registry; it is RegisterDebugIn(mux, Default()).
func RegisterDebug(mux *http.ServeMux) { RegisterDebugIn(mux, Default()) }

// RegisterDebugIn registers /metrics, /metrics.json, /debug/vars, and the
// /debug/pprof family on mux, with the snapshot endpoints reading reg.
// (/debug/vars always reports the process-wide expvar state, which carries
// the default registry under "telemetry".)
func RegisterDebugIn(mux *http.ServeMux, reg *Registry) {
	PublishExpvar()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = reg.Snapshot().WriteText(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.Snapshot().WriteJSON(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// DebugMux returns a fresh mux with the debug endpoints registered against
// the default registry.
func DebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	RegisterDebug(mux)
	return mux
}

// ServeDebug starts the debug HTTP server on addr (host:port; use ":0"
// for an ephemeral port) and returns the bound address. The server runs
// until the process exits.
func ServeDebug(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("telemetry: metrics server: %w", err)
	}
	srv := &http.Server{Handler: DebugMux()}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}
