# Single source of truth for the commands CI runs, so humans and the
# workflows in .github/workflows/ can never drift apart.

GO ?= go

.PHONY: build test race lint bench cover

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# gofmt -l lists unformatted files; any output fails the target.
lint:
	$(GO) vet ./...
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# One iteration of every benchmark, no unit tests: a smoke test that keeps
# bench_test.go compiling and running (the nightly CI job runs this).
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1
