# Single source of truth for the commands CI runs, so humans and the
# workflows in .github/workflows/ can never drift apart.

GO ?= go

.PHONY: build test race lint bench cover test-parallel smoke fuzz-regress

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# gofmt -l lists unformatted files; any output fails the target.
# staticcheck runs when installed (CI installs it; offline dev boxes may
# not have it, and must not fail for lack of a network).
lint:
	$(GO) vet ./...
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# The parallel-pipeline determinism suite under the race detector: the
# merge property test, the sharded-collector equivalence tests, and the
# grid/singleflight/cancellation tests of the experiments package.
test-parallel:
	$(GO) test -race -count=1 -run 'TestMerge|TestSharded' ./internal/interval/
	$(GO) test -race -count=1 -run 'TestShardedSuite|TestGridMatches|TestAllContextCancel|TestDataSingleflight|TestWaiterCancellation' ./internal/experiments/

# One iteration of every benchmark, no unit tests: a smoke test that keeps
# bench_test.go compiling and running (the nightly CI job runs this).
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# End-to-end daemon smoke: build cmd/leakaged, boot it on an ephemeral
# port, probe /readyz and a figure endpoint, SIGTERM, require exit 0.
smoke:
	GO=$(GO) sh scripts/smoke_leakaged.sh

# Replay the seed corpus of every fuzz target as plain tests (no fuzzing
# time budget needed) — the regression net for the trace codec.
fuzz-regress:
	$(GO) test -run=Fuzz ./internal/sim/trace/
