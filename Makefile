# Single source of truth for the commands CI runs, so humans and the
# workflows in .github/workflows/ can never drift apart.

GO ?= go

.PHONY: build test race lint vulncheck bench bench-json bench-gate cover test-parallel smoke fuzz-regress check-specs

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# gofmt -l lists unformatted files; any output fails the target.
# leakbound-lint is the repo's own multichecker (determinism, ctxflow,
# errwrap, telemetryscope, locks, plus the interprocedural hotalloc,
# detflow, ctxpair); `go run` needs no install step. -timing prints the
# per-analyzer wall time so a slow summary pass is visible immediately.
# staticcheck runs when installed (CI installs the pinned 2024.1.1; offline
# dev boxes may not have it, and must not fail for lack of a network).
lint:
	$(GO) vet ./...
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) run ./cmd/leakbound-lint -timing ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@2024.1.1)"; \
	fi

# govulncheck runs when installed; like staticcheck, a network-restricted
# box (or fork CI) skips rather than fails. The CI job makes it blocking
# only on pushes to main.
vulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

# The parallel-pipeline determinism suite under the race detector: the
# merge property test, the sharded-collector equivalence tests, and the
# grid/singleflight/cancellation tests of the experiments package.
test-parallel:
	$(GO) test -race -count=1 -run 'TestMerge|TestSharded' ./internal/interval/
	$(GO) test -race -count=1 -run 'TestShardedSuite|TestGridMatches|TestAllContextCancel|TestDataSingleflight|TestWaiterCancellation' ./internal/experiments/

# One iteration of every benchmark, no unit tests: a smoke test that keeps
# bench_test.go compiling and running (the nightly CI job runs this).
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Freeze the core end-to-end benchmarks into BENCH_<date>[_label].json at
# the repo root (see scripts/bench_snapshot.sh for the selection and the
# BENCH/BENCHTIME/COUNT knobs). `make bench-json LABEL=r2-streaming`.
bench-json:
	GO=$(GO) sh scripts/bench_snapshot.sh $(LABEL)

# Run the same benchmark set and gate it against the newest committed
# BENCH_*.json: allocs/op regressions always fail; ns/op regressions
# >20% fail only when the baseline came from the same CPU model (timing
# across different machines is advisory). GATE_FLAGS=-warn-only to
# report without failing; GATE_FLAGS+='-summary $$GITHUB_STEP_SUMMARY'
# in CI to publish the comparison table.
bench-gate:
	$(GO) test -run '^$$' -bench '^(BenchmarkSuiteAll|BenchmarkPipelineSimulateGzip|BenchmarkPipelineSimulateGzipSharded|BenchmarkGridFigure8Workers1|BenchmarkSweepDense256Reference|BenchmarkSweepDense256Aggregates|BenchmarkParetoPopulation|BenchmarkSpecCompile|BenchmarkReplayPass)$$' \
		-benchmem -benchtime 100ms -count 3 . | $(GO) run ./cmd/benchsnap -compare . $(GATE_FLAGS)

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# End-to-end daemon smoke: build cmd/leakaged, boot it on an ephemeral
# port, probe /readyz and a figure endpoint, SIGTERM, require exit 0.
smoke:
	GO=$(GO) sh scripts/smoke_leakaged.sh

# Replay the seed corpus of every fuzz target as plain tests (no fuzzing
# time budget needed) — the regression net for the trace codec, the query
# parser, and the workload-spec parser.
fuzz-regress:
	$(GO) test -run=Fuzz ./internal/sim/trace/ ./internal/experiments/ ./internal/leakage/ ./internal/workload/spec/

# Validate every committed example workload spec (parse + strict
# validation + digest) via the tracegen -check path CI and users share.
check-specs:
	$(GO) run ./cmd/tracegen -check examples/specs
