// Package leakbound is a from-scratch Go reproduction of "On the Limits of
// Leakage Power Reduction in Caches" (Meng, Sherwood, Kastner — HPCA 2005).
//
// The paper asks how much cache leakage power existing circuit techniques —
// gated-Vdd "sleep" and low-voltage "drowsy" modes — could possibly save if
// management policy were perfect, and answers it with an oracle study: with
// the future address trace known, every access interval gets the cheapest
// operating mode, and the inflection points between modes follow from a
// small set of circuit parameters.
//
// The library layout (all under internal/, wired together by the cmd/
// binaries and examples/):
//
//   - sim/trace, sim/cache, sim/cpu — the timed simulation substrate: a
//     4-wide Alpha-21264-like core over 64KB L1s and a 2MB L2;
//   - workload — deterministic synthetic stand-ins for the six SPEC2000
//     benchmarks the paper uses;
//   - simpoint — BBV + k-means phase analysis (the paper's SimPoint step);
//   - power — per-technology leakage/energy parameters, Equations 1–3, and
//     the Table 1 calibration;
//   - interval — per-frame access interval extraction (Section 3.1);
//   - leakage — the paper's contribution: oracle policies, the optimality
//     theorem, and the generalized model of Figure 6;
//   - prefetch — next-line and stride prefetchability (Section 5);
//   - experiments — one runner per table and figure of the evaluation.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-versus-measured results.
package leakbound
